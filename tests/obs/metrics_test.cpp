// Tests for the per-instance metrics registry and the obs::recording
// stats policy: striped counters aggregate correctly under concurrent
// writers (this file is part of the TSan suite), two instrumented trees
// attribute events independently, and the recording hooks wired through
// the trees produce consistent counts.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "baselines/efrb_tree.hpp"
#include "baselines/hj_tree.hpp"
#include "core/natarajan_tree.hpp"
#include "harness/runner.hpp"
#include "harness/workload.hpp"
#include "shard/sharded_set.hpp"

namespace lfbst::obs {
namespace {

TEST(Metrics, AddAndSnapshot) {
  metrics m;
  m.add(counter::cas);
  m.add(counter::cas);
  m.add(counter::excised_nodes, 5);
  const metrics_snapshot s = m.snapshot();
  EXPECT_EQ(s[counter::cas], 2u);
  EXPECT_EQ(s[counter::excised_nodes], 5u);
  EXPECT_EQ(s[counter::bts], 0u);
  EXPECT_EQ(m.total(counter::cas), 2u);
}

TEST(Metrics, ResetClears) {
  metrics m;
  m.add(counter::helps, 7);
  m.reset();
  EXPECT_EQ(m.total(counter::helps), 0u);
}

TEST(Metrics, ConcurrentStripedAggregation) {
  // Each thread owns its stripe, so concurrent add() calls never race;
  // the aggregate must equal the exact total. Run under TSan to pin the
  // "relaxed single-writer stripes are clean" claim.
  metrics m;
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&m] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        m.add(counter::cas);
        if (i % 2 == 0) m.add(counter::helps);
      }
    });
  }
  // Concurrent snapshots must observe valid partial sums (monotone,
  // TSan-clean), even while writers are running.
  std::uint64_t last = 0;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t now = m.total(counter::cas);
    EXPECT_GE(now, last);
    last = now;
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(m.total(counter::cas), kThreads * kPerThread);
  EXPECT_EQ(m.total(counter::helps), kThreads * kPerThread / 2);
}

TEST(Metrics, CounterNamesAreStable) {
  // JSON exports key on these names; renaming is a schema break.
  EXPECT_STREQ(counter_name(counter::ops_search), "ops_search");
  EXPECT_STREQ(counter_name(counter::cas_failed), "cas_failed");
  EXPECT_STREQ(counter_name(counter::helps_flagged), "helps_flagged");
  EXPECT_STREQ(counter_name(counter::helps_tagged), "helps_tagged");
  EXPECT_STREQ(counter_name(counter::excised_nodes), "excised_nodes");
  EXPECT_STREQ(counter_name(counter::restarts_injection_fail),
               "restarts_injection_fail");
  EXPECT_STREQ(counter_name(counter::restarts_cleanup_mode),
               "restarts_cleanup_mode");
  EXPECT_STREQ(counter_name(counter::seek_resumes_local),
               "seek_resumes_local");
  EXPECT_STREQ(counter_name(counter::seek_anchor_fallbacks),
               "seek_anchor_fallbacks");
}

TEST(Recording, RestartAttributionSplitsByKind) {
  recording rec;
  rec.on_seek_restart(stats::restart_kind::injection_fail);
  rec.on_seek_restart(stats::restart_kind::injection_fail);
  rec.on_seek_restart(stats::restart_kind::cleanup_mode);
  rec.on_seek_restart();  // unattributed (baseline trees)
  rec.on_seek_resume_local();
  rec.on_seek_resume_local();
  rec.on_seek_anchor_fallback();
  const metrics_snapshot s = rec.counters().snapshot();
  EXPECT_EQ(s[counter::seek_restarts], 4u);
  EXPECT_EQ(s[counter::restarts_injection_fail], 2u);
  EXPECT_EQ(s[counter::restarts_cleanup_mode], 1u);
  EXPECT_EQ(s[counter::seek_resumes_local], 2u);
  EXPECT_EQ(s[counter::seek_anchor_fallbacks], 1u);
}

TEST(Recording, CountsOperationsOnNmTree) {
  nm_tree<long, std::less<long>, reclaim::leaky, recording> tree;
  for (long k = 0; k < 10; ++k) EXPECT_TRUE(tree.insert(k));
  EXPECT_FALSE(tree.insert(5));
  for (long k = 0; k < 5; ++k) EXPECT_TRUE(tree.erase(k));
  EXPECT_TRUE(tree.contains(7));
  EXPECT_FALSE(tree.contains(3));

  const metrics_snapshot s = tree.stats().counters().snapshot();
  EXPECT_EQ(s[counter::ops_insert], 11u);
  EXPECT_EQ(s[counter::ops_erase], 5u);
  EXPECT_EQ(s[counter::ops_search], 2u);
  // 10 inserts + 5 erases + contains(7) succeeded.
  EXPECT_EQ(s[counter::ops_succeeded], 16u);
  EXPECT_GT(s[counter::allocs], 0u);
  EXPECT_GT(s[counter::cas], 0u);
  // Single-threaded: nothing contended, nothing helped.
  EXPECT_EQ(s[counter::cas_failed], 0u);
  EXPECT_EQ(s[counter::helps], 0u);
  EXPECT_EQ(s[counter::seek_restarts], 0u);
  EXPECT_EQ(s[counter::restarts_injection_fail], 0u);
  EXPECT_EQ(s[counter::restarts_cleanup_mode], 0u);
  EXPECT_EQ(s[counter::seek_resumes_local], 0u);
  EXPECT_EQ(s[counter::seek_anchor_fallbacks], 0u);
  // Every successful erase runs cleanup; each excises at least one leaf.
  EXPECT_GE(s[counter::cleanups], 5u);
  EXPECT_EQ(s[counter::excisions], 5u);
  EXPECT_GE(s[counter::excised_nodes], 5u);
}

TEST(Recording, LatencyAndSeekHistogramsFill) {
  nm_tree<long, std::less<long>, reclaim::leaky, recording> tree;
  for (long k = 0; k < 100; ++k) tree.insert(k);
  for (long k = 0; k < 100; ++k) (void)tree.contains(k);
  const histogram search_lat =
      tree.stats().latency_histogram(stats::op_kind::search);
  EXPECT_EQ(search_lat.count(), 100u);
  const histogram insert_lat =
      tree.stats().latency_histogram(stats::op_kind::insert);
  EXPECT_EQ(insert_lat.count(), 100u);
  EXPECT_EQ(tree.stats().latency_histogram(stats::op_kind::erase).count(),
            0u);
  // One seek per uncontended op, depth at least the root edge.
  const histogram depth = tree.stats().seek_depth_histogram();
  EXPECT_EQ(depth.count(), 200u);
  EXPECT_GE(depth.max(), 1u);
}

TEST(Recording, TwoInstancesAttributeIndependently) {
  // The limitation obs exists to fix: stats::counting is policy-global,
  // recording is per tree instance.
  nm_tree<long, std::less<long>, reclaim::leaky, recording> a;
  efrb_tree<long, std::less<long>, reclaim::leaky, recording> b;
  for (long k = 0; k < 20; ++k) a.insert(k);
  b.insert(1);
  EXPECT_EQ(a.stats().counters().total(counter::ops_insert), 20u);
  EXPECT_EQ(b.stats().counters().total(counter::ops_insert), 1u);
}

TEST(Recording, HelpAttributionSplitsByEdgeKind) {
  recording rec;
  rec.on_help(stats::help_kind::flagged_edge);
  rec.on_help(stats::help_kind::flagged_edge);
  rec.on_help(stats::help_kind::tagged_edge);
  rec.on_help();  // unattributed (EFRB/HJ node-level helping)
  const metrics_snapshot s = rec.counters().snapshot();
  EXPECT_EQ(s[counter::helps], 4u);
  EXPECT_EQ(s[counter::helps_flagged], 2u);
  EXPECT_EQ(s[counter::helps_tagged], 1u);
}

TEST(Recording, ConcurrentWorkloadCountsAreConsistent) {
  using tree_t = nm_tree<long, std::less<long>, reclaim::leaky, recording>;
  tree_t tree;
  harness::workload_config cfg;
  cfg.key_range = 256;  // small range: guarantee contention
  cfg.mix = harness::write_dominated;
  cfg.threads = 4;
  cfg.duration = std::chrono::milliseconds(50);
  const harness::run_result r = harness::run_workload(tree, cfg);

  const metrics_snapshot s = tree.stats().counters().snapshot();
  // The runner's own tally and the tree's instrumentation must agree on
  // the op mix (prepopulation inserts are counted by the tree only).
  EXPECT_EQ(s[counter::ops_search], r.searches);
  EXPECT_GE(s[counter::ops_insert], r.inserts);
  EXPECT_EQ(s[counter::ops_erase], r.erases);
  // Contended run: some CAS must have failed, and failures imply either
  // a help, a seek restart or an insert retry was observed.
  EXPECT_GT(s[counter::cas], 0u);
  EXPECT_LE(s[counter::cas_failed], s[counter::cas]);
  // helps splits into flagged + tagged (NM attributes every help site).
  EXPECT_EQ(s[counter::helps],
            s[counter::helps_flagged] + s[counter::helps_tagged]);
  // Every excision excises at least one node.
  EXPECT_GE(s[counter::excised_nodes], s[counter::excisions]);
  EXPECT_LE(s[counter::excisions], s[counter::cleanups]);
}

TEST(Recording, RestartCounterAlgebraUnderContention) {
  // Every attributed restart (NM attributes them all) is followed by
  // exactly one retry seek, which under the default restart::from_anchor
  // resolves to a local resume or a root fallback — never both, never
  // neither. The algebra must hold exactly for any interleaving.
  using tree_t = nm_tree<long, std::less<long>, reclaim::leaky, recording>;
  tree_t tree;
  harness::workload_config cfg;
  cfg.key_range = 64;  // tiny range: adjacent-leaf churn, real contention
  cfg.mix = harness::write_dominated;
  cfg.threads = 4;
  cfg.duration = std::chrono::milliseconds(50);
  (void)harness::run_workload(tree, cfg);

  const metrics_snapshot s = tree.stats().counters().snapshot();
  EXPECT_EQ(s[counter::seek_restarts],
            s[counter::restarts_injection_fail] +
                s[counter::restarts_cleanup_mode]);
  EXPECT_EQ(s[counter::seek_restarts],
            s[counter::seek_resumes_local] +
                s[counter::seek_anchor_fallbacks]);
}

TEST(Recording, ShardMergeSurfacesRestartCounters) {
  // The shard front-end's merged_counters() must fold the new restart
  // attribution counters exactly like any other counter (the merge is
  // a generic loop — this pins that new counters actually flow).
  using tree_t = nm_tree<long, std::less<long>, reclaim::leaky, recording>;
  shard::sharded_set<tree_t> set(4, 0, 64);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < 4; ++t) {
    threads.emplace_back([&set, t] {
      for (int n = 0; n < 20'000; ++n) {
        const long k = (n + static_cast<int>(t)) % 64;
        if ((n & 1) != 0) {
          set.insert(k);
        } else {
          set.erase(k);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  const metrics_snapshot merged = set.merged_counters();
  metrics_snapshot manual;
  for (std::size_t i = 0; i < set.shard_count(); ++i) {
    manual.merge(set.shard(i).stats().counters().snapshot());
  }
  EXPECT_EQ(merged.values, manual.values);
  EXPECT_EQ(merged[counter::seek_restarts],
            merged[counter::restarts_injection_fail] +
                merged[counter::restarts_cleanup_mode]);
  EXPECT_EQ(merged[counter::seek_restarts],
            merged[counter::seek_resumes_local] +
                merged[counter::seek_anchor_fallbacks]);
}

TEST(LatencyObserver, RecordsEveryOperation) {
  nm_tree<long> tree;
  latency_observer observer;
  harness::workload_config cfg;
  cfg.key_range = 1'000;
  cfg.mix = harness::mixed;
  cfg.threads = 2;
  cfg.duration = std::chrono::milliseconds(30);
  const harness::run_result r = harness::run_workload(tree, cfg, &observer);
  EXPECT_EQ(observer.merged_all().count(), r.total_ops);
  EXPECT_EQ(observer.merged(stats::op_kind::search).count(), r.searches);
  EXPECT_EQ(observer.merged(stats::op_kind::insert).count(), r.inserts);
  EXPECT_EQ(observer.merged(stats::op_kind::erase).count(), r.erases);
  EXPECT_GT(observer.merged_all().sum(), 0u);
}

TEST(Recording, WorksOnAllThreeInstrumentedTrees) {
  nm_tree<long, std::less<long>, reclaim::leaky, recording> nm;
  efrb_tree<long, std::less<long>, reclaim::leaky, recording> efrb;
  hj_tree<long, std::less<long>, reclaim::leaky, recording> hj;
  auto drive = [](auto& tree) {
    for (long k = 0; k < 50; ++k) tree.insert(k);
    for (long k = 0; k < 25; ++k) tree.erase(k);
    for (long k = 0; k < 50; ++k) (void)tree.contains(k);
  };
  drive(nm);
  drive(efrb);
  drive(hj);
  for (const recording* rec :
       {&nm.stats(), &efrb.stats(), &hj.stats()}) {
    const metrics_snapshot s = rec->counters().snapshot();
    EXPECT_EQ(s[counter::ops_insert], 50u);
    EXPECT_EQ(s[counter::ops_erase], 25u);
    EXPECT_EQ(s[counter::ops_search], 50u);
    EXPECT_GT(s[counter::allocs], 0u);
    EXPECT_GT(s[counter::cas], 0u);
    EXPECT_GT(rec->seek_depth_histogram().count(), 0u);
  }
}

TEST(StatsNone, StaysZeroSizedInsideTrees) {
  // The [[no_unique_address]] stats_ member must not grow the
  // uninstrumented tree — the zero-overhead contract.
  static_assert(sizeof(nm_tree<long>) ==
                sizeof(nm_tree<long, std::less<long>, reclaim::leaky,
                               stats::counting>));
  SUCCEED();
}

}  // namespace
}  // namespace lfbst::obs
