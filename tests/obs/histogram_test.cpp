// Pins the HDR histogram's contract: exact percentiles below the linear
// threshold, bounded relative error above it, and bucket-wise merge that
// is associative and commutative (the property the per-thread recording
// scheme relies on).
#include "obs/histogram.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace lfbst::obs {
namespace {

TEST(Histogram, EmptyIsZero) {
  histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.value_at_percentile(50), 0u);
}

TEST(Histogram, SmallValuesAreExact) {
  // Values below 2*subbucket_count (64) get one bucket each, so every
  // percentile of a small-value distribution is exact.
  histogram h;
  for (std::uint64_t v = 0; v < 64; ++v) h.record(v);
  EXPECT_EQ(h.count(), 64u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 63u);
  // The p-th percentile of {0..63} is the ceil(p/100*64)-th smallest.
  EXPECT_EQ(h.value_at_percentile(50), 31u);
  EXPECT_EQ(h.value_at_percentile(25), 15u);
  EXPECT_EQ(h.value_at_percentile(100), 63u);
  EXPECT_EQ(h.value_at_percentile(0), 0u);
}

TEST(Histogram, SingleValuePercentiles) {
  histogram h;
  h.record(12345, 1000);
  for (double p : {0.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    const std::uint64_t v = h.value_at_percentile(p);
    // One distinct sample: every percentile lands in its bucket, and the
    // result is clamped to the true max.
    EXPECT_EQ(v, 12345u) << "p=" << p;
  }
  EXPECT_EQ(h.mean(), 12345.0);
}

TEST(Histogram, QuantizationErrorIsBounded) {
  // Every value maps to a bucket whose width is at most value / 32
  // (1/subbucket_count relative error), and the value lies inside its
  // own equivalence interval.
  pcg32 rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t v = rng.next64() % histogram::max_trackable;
    const std::uint64_t lo = histogram::lowest_equivalent(v);
    const std::uint64_t hi = histogram::highest_equivalent_value(v);
    ASSERT_LE(lo, v);
    ASSERT_GE(hi, v);
    if (v >= 2 * histogram::subbucket_count) {
      ASSERT_LE(hi - lo, v >> histogram::subbucket_bits)
          << "bucket too wide for " << v;
    } else {
      ASSERT_EQ(lo, hi) << "small values must be exact";
    }
  }
}

TEST(Histogram, PercentileReturnsBucketUpperBoundClampedToMax) {
  histogram h;
  h.record(100);
  h.record(1'000);
  h.record(1'000'000);
  // p100 must be the true max even though the bucket upper bound for
  // 1'000'000 is larger.
  EXPECT_EQ(h.value_at_percentile(100), 1'000'000u);
  // p50 (second smallest of three) lands in 1000's bucket.
  const std::uint64_t p50 = h.value_at_percentile(50);
  EXPECT_LE(histogram::lowest_equivalent(1'000), p50);
  EXPECT_EQ(p50, histogram::highest_equivalent_value(1'000));
}

TEST(Histogram, OversizedValuesClampToMaxTrackable) {
  histogram h;
  h.record(histogram::max_trackable + 12345);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), histogram::max_trackable);
  EXPECT_EQ(h.value_at_percentile(100), histogram::max_trackable);
}

TEST(Histogram, MergeIsAssociativeAndCommutative) {
  pcg32 rng(42);
  histogram a, b, c;
  for (int i = 0; i < 1'000; ++i) {
    a.record(rng.next64() % 1'000'000);
    b.record(rng.next64() % 100);
    c.record(rng.next64() % (1ull << 30));
  }

  histogram ab_c;  // (a + b) + c
  ab_c.merge(a);
  ab_c.merge(b);
  ab_c.merge(c);
  histogram a_bc;  // a + (b + c)
  histogram bc;
  bc.merge(b);
  bc.merge(c);
  a_bc.merge(a);
  a_bc.merge(bc);
  histogram cba;  // c + b + a
  cba.merge(c);
  cba.merge(b);
  cba.merge(a);

  for (const histogram* m : {&a_bc, &cba}) {
    EXPECT_EQ(ab_c.count(), m->count());
    EXPECT_EQ(ab_c.sum(), m->sum());
    EXPECT_EQ(ab_c.min(), m->min());
    EXPECT_EQ(ab_c.max(), m->max());
    for (std::size_t i = 0; i < histogram::bucket_count_; ++i) {
      ASSERT_EQ(ab_c.bucket_value(i), m->bucket_value(i)) << "bucket " << i;
    }
  }
}

TEST(Histogram, MergeMatchesDirectRecording) {
  // Splitting a sample stream across threads' histograms and merging
  // must be indistinguishable from recording into one histogram.
  pcg32 rng(11);
  histogram direct;
  std::vector<histogram> shards(4);
  for (int i = 0; i < 4'000; ++i) {
    const std::uint64_t v = rng.next64() % (1ull << 20);
    direct.record(v);
    shards[static_cast<std::size_t>(i) % 4].record(v);
  }
  histogram merged;
  for (const histogram& s : shards) merged.merge(s);
  EXPECT_EQ(direct.count(), merged.count());
  EXPECT_EQ(direct.sum(), merged.sum());
  EXPECT_EQ(direct.min(), merged.min());
  EXPECT_EQ(direct.max(), merged.max());
  for (double p : {50.0, 90.0, 99.0, 99.9}) {
    EXPECT_EQ(direct.value_at_percentile(p), merged.value_at_percentile(p));
  }
}

TEST(Histogram, MergeWithEmptyIsIdentity) {
  histogram h, empty;
  h.record(5);
  h.record(500);
  const std::uint64_t count = h.count(), sum = h.sum();
  const std::uint64_t mn = h.min(), mx = h.max();
  h.merge(empty);
  EXPECT_EQ(h.count(), count);
  EXPECT_EQ(h.sum(), sum);
  EXPECT_EQ(h.min(), mn);
  EXPECT_EQ(h.max(), mx);
  empty.merge(h);  // merging into empty copies the distribution
  EXPECT_EQ(empty.min(), mn);
  EXPECT_EQ(empty.max(), mx);
}

TEST(Histogram, ResetClears) {
  histogram h;
  h.record(77, 10);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.value_at_percentile(99), 0u);
}

// --- delta_since: the telemetry window algebra ------------------------

TEST(Histogram, DeltaOfSelfIsEmpty) {
  histogram h;
  for (std::uint64_t v = 1; v < 2'000; v += 7) h.record(v);
  const histogram d = h.delta_since(h);
  EXPECT_EQ(d.count(), 0u);
  EXPECT_EQ(d.sum(), 0u);
  EXPECT_EQ(d.value_at_percentile(99), 0u);
  for (std::size_t i = 0; i < histogram::bucket_count_; ++i) {
    ASSERT_EQ(d.bucket_value(i), 0u) << "bucket " << i;
  }
}

TEST(Histogram, DeltaIsNonNegativeAndMatchesRebuilt) {
  // delta_since(snapshot) must equal, bucket for bucket, a histogram
  // rebuilt from only the samples recorded after the snapshot.
  pcg32 rng(21);
  histogram h;
  for (int i = 0; i < 3'000; ++i) h.record(rng.next64() % (1ull << 24));
  const histogram earlier = h;  // the sampler's previous-window snapshot
  histogram rebuilt;
  for (int i = 0; i < 2'000; ++i) {
    const std::uint64_t v = rng.next64() % (1ull << 28);
    h.record(v);
    rebuilt.record(v);
  }
  const histogram d = h.delta_since(earlier);
  EXPECT_EQ(d.count(), rebuilt.count());
  EXPECT_EQ(d.sum(), rebuilt.sum());
  for (std::size_t i = 0; i < histogram::bucket_count_; ++i) {
    ASSERT_EQ(d.bucket_value(i), rebuilt.bucket_value(i)) << "bucket " << i;
  }
  // min/max of a delta are bucket-quantized (the exact samples are
  // gone), so they bound the rebuilt values within one bucket.
  EXPECT_EQ(d.min(), histogram::lowest_equivalent(rebuilt.min()));
  EXPECT_EQ(d.max(), histogram::highest_equivalent_value(rebuilt.max()));
}

TEST(Histogram, DeltaQuantilesMatchRebuiltAtBucketResolution) {
  pcg32 rng(33);
  histogram h;
  for (int i = 0; i < 5'000; ++i) h.record(rng.next64() % 1'000'000);
  const histogram earlier = h;
  histogram rebuilt;
  for (int i = 0; i < 5'000; ++i) {
    const std::uint64_t v = rng.next64() % 50'000'000;
    h.record(v);
    rebuilt.record(v);
  }
  const histogram d = h.delta_since(earlier);
  for (double p : {10.0, 50.0, 90.0, 99.0, 99.9}) {
    // Both sides report a value inside the same quantization bucket;
    // rebuilt additionally clamps to its exact max, the delta to the
    // bucket bound, so compare at bucket resolution.
    EXPECT_EQ(histogram::highest_equivalent_value(d.value_at_percentile(p)),
              histogram::highest_equivalent_value(
                  rebuilt.value_at_percentile(p)))
        << "p=" << p;
  }
}

TEST(Histogram, MergeThenDeltaEqualsDeltaThenMerge) {
  // Two recording streams (a, b), each snapshotted then extended. The
  // sampler merges first and takes one delta; it must see exactly the
  // merge of the per-stream deltas.
  pcg32 rng(55);
  histogram a, b;
  for (int i = 0; i < 1'000; ++i) {
    a.record(rng.next64() % 10'000);
    b.record(rng.next64() % 1'000'000);
  }
  const histogram a0 = a, b0 = b;
  for (int i = 0; i < 1'500; ++i) {
    a.record(rng.next64() % (1ull << 22));
    b.record(rng.next64() % 300);
  }

  histogram merged_now = a, merged_was = a0;
  merged_now.merge(b);
  merged_was.merge(b0);
  const histogram merge_then_delta = merged_now.delta_since(merged_was);

  histogram delta_then_merge = a.delta_since(a0);
  delta_then_merge.merge(b.delta_since(b0));

  EXPECT_EQ(merge_then_delta.count(), delta_then_merge.count());
  EXPECT_EQ(merge_then_delta.sum(), delta_then_merge.sum());
  for (std::size_t i = 0; i < histogram::bucket_count_; ++i) {
    ASSERT_EQ(merge_then_delta.bucket_value(i),
              delta_then_merge.bucket_value(i))
        << "bucket " << i;
  }
  for (double p : {50.0, 99.0}) {
    EXPECT_EQ(merge_then_delta.value_at_percentile(p),
              delta_then_merge.value_at_percentile(p))
        << "p=" << p;
  }
}

TEST(Histogram, WeightedRecord) {
  histogram h;
  h.record(10, 99);
  h.record(20, 1);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 99u * 10 + 20);
  EXPECT_EQ(h.value_at_percentile(50), 10u);
  EXPECT_EQ(h.value_at_percentile(99), 10u);
  EXPECT_EQ(h.value_at_percentile(99.9), 20u);
}

}  // namespace
}  // namespace lfbst::obs
