// Pins the HDR histogram's contract: exact percentiles below the linear
// threshold, bounded relative error above it, and bucket-wise merge that
// is associative and commutative (the property the per-thread recording
// scheme relies on).
#include "obs/histogram.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace lfbst::obs {
namespace {

TEST(Histogram, EmptyIsZero) {
  histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.value_at_percentile(50), 0u);
}

TEST(Histogram, SmallValuesAreExact) {
  // Values below 2*subbucket_count (64) get one bucket each, so every
  // percentile of a small-value distribution is exact.
  histogram h;
  for (std::uint64_t v = 0; v < 64; ++v) h.record(v);
  EXPECT_EQ(h.count(), 64u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 63u);
  // The p-th percentile of {0..63} is the ceil(p/100*64)-th smallest.
  EXPECT_EQ(h.value_at_percentile(50), 31u);
  EXPECT_EQ(h.value_at_percentile(25), 15u);
  EXPECT_EQ(h.value_at_percentile(100), 63u);
  EXPECT_EQ(h.value_at_percentile(0), 0u);
}

TEST(Histogram, SingleValuePercentiles) {
  histogram h;
  h.record(12345, 1000);
  for (double p : {0.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    const std::uint64_t v = h.value_at_percentile(p);
    // One distinct sample: every percentile lands in its bucket, and the
    // result is clamped to the true max.
    EXPECT_EQ(v, 12345u) << "p=" << p;
  }
  EXPECT_EQ(h.mean(), 12345.0);
}

TEST(Histogram, QuantizationErrorIsBounded) {
  // Every value maps to a bucket whose width is at most value / 32
  // (1/subbucket_count relative error), and the value lies inside its
  // own equivalence interval.
  pcg32 rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t v = rng.next64() % histogram::max_trackable;
    const std::uint64_t lo = histogram::lowest_equivalent(v);
    const std::uint64_t hi = histogram::highest_equivalent_value(v);
    ASSERT_LE(lo, v);
    ASSERT_GE(hi, v);
    if (v >= 2 * histogram::subbucket_count) {
      ASSERT_LE(hi - lo, v >> histogram::subbucket_bits)
          << "bucket too wide for " << v;
    } else {
      ASSERT_EQ(lo, hi) << "small values must be exact";
    }
  }
}

TEST(Histogram, PercentileReturnsBucketUpperBoundClampedToMax) {
  histogram h;
  h.record(100);
  h.record(1'000);
  h.record(1'000'000);
  // p100 must be the true max even though the bucket upper bound for
  // 1'000'000 is larger.
  EXPECT_EQ(h.value_at_percentile(100), 1'000'000u);
  // p50 (second smallest of three) lands in 1000's bucket.
  const std::uint64_t p50 = h.value_at_percentile(50);
  EXPECT_LE(histogram::lowest_equivalent(1'000), p50);
  EXPECT_EQ(p50, histogram::highest_equivalent_value(1'000));
}

TEST(Histogram, OversizedValuesClampToMaxTrackable) {
  histogram h;
  h.record(histogram::max_trackable + 12345);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), histogram::max_trackable);
  EXPECT_EQ(h.value_at_percentile(100), histogram::max_trackable);
}

TEST(Histogram, MergeIsAssociativeAndCommutative) {
  pcg32 rng(42);
  histogram a, b, c;
  for (int i = 0; i < 1'000; ++i) {
    a.record(rng.next64() % 1'000'000);
    b.record(rng.next64() % 100);
    c.record(rng.next64() % (1ull << 30));
  }

  histogram ab_c;  // (a + b) + c
  ab_c.merge(a);
  ab_c.merge(b);
  ab_c.merge(c);
  histogram a_bc;  // a + (b + c)
  histogram bc;
  bc.merge(b);
  bc.merge(c);
  a_bc.merge(a);
  a_bc.merge(bc);
  histogram cba;  // c + b + a
  cba.merge(c);
  cba.merge(b);
  cba.merge(a);

  for (const histogram* m : {&a_bc, &cba}) {
    EXPECT_EQ(ab_c.count(), m->count());
    EXPECT_EQ(ab_c.sum(), m->sum());
    EXPECT_EQ(ab_c.min(), m->min());
    EXPECT_EQ(ab_c.max(), m->max());
    for (std::size_t i = 0; i < histogram::bucket_count_; ++i) {
      ASSERT_EQ(ab_c.bucket_value(i), m->bucket_value(i)) << "bucket " << i;
    }
  }
}

TEST(Histogram, MergeMatchesDirectRecording) {
  // Splitting a sample stream across threads' histograms and merging
  // must be indistinguishable from recording into one histogram.
  pcg32 rng(11);
  histogram direct;
  std::vector<histogram> shards(4);
  for (int i = 0; i < 4'000; ++i) {
    const std::uint64_t v = rng.next64() % (1ull << 20);
    direct.record(v);
    shards[static_cast<std::size_t>(i) % 4].record(v);
  }
  histogram merged;
  for (const histogram& s : shards) merged.merge(s);
  EXPECT_EQ(direct.count(), merged.count());
  EXPECT_EQ(direct.sum(), merged.sum());
  EXPECT_EQ(direct.min(), merged.min());
  EXPECT_EQ(direct.max(), merged.max());
  for (double p : {50.0, 90.0, 99.0, 99.9}) {
    EXPECT_EQ(direct.value_at_percentile(p), merged.value_at_percentile(p));
  }
}

TEST(Histogram, MergeWithEmptyIsIdentity) {
  histogram h, empty;
  h.record(5);
  h.record(500);
  const std::uint64_t count = h.count(), sum = h.sum();
  const std::uint64_t mn = h.min(), mx = h.max();
  h.merge(empty);
  EXPECT_EQ(h.count(), count);
  EXPECT_EQ(h.sum(), sum);
  EXPECT_EQ(h.min(), mn);
  EXPECT_EQ(h.max(), mx);
  empty.merge(h);  // merging into empty copies the distribution
  EXPECT_EQ(empty.min(), mn);
  EXPECT_EQ(empty.max(), mx);
}

TEST(Histogram, ResetClears) {
  histogram h;
  h.record(77, 10);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.value_at_percentile(99), 0u);
}

TEST(Histogram, WeightedRecord) {
  histogram h;
  h.record(10, 99);
  h.record(20, 1);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 99u * 10 + 20);
  EXPECT_EQ(h.value_at_percentile(50), 10u);
  EXPECT_EQ(h.value_at_percentile(99), 10u);
  EXPECT_EQ(h.value_at_percentile(99.9), 20u);
}

}  // namespace
}  // namespace lfbst::obs
