// White-box tests of the NM-BST internals: seek-record semantics,
// edge-marking state machine, helping of stalled deletes, and the
// multi-leaf removal of Fig. 2 — each driven deterministically via the
// test-access hooks rather than hoping a scheduler interleaves just so.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/natarajan_tree.hpp"
#include "nm_test_access.hpp"
#include "reclaim/hazard_reclaimer.hpp"

namespace lfbst {
namespace {

using access = nm_tree_test_access;

/// Builds the same randomized tree in two differently-policied trees.
template <typename A, typename B>
void pcg32_build_both(A& a, B& b) {
  pcg32 rng(77);
  for (int i = 0; i < 200; ++i) {
    const long k = rng.bounded(128);
    a.insert(k);
    b.insert(k);
  }
  for (int i = 0; i < 60; ++i) {
    const long k = rng.bounded(128);
    a.erase(k);
    b.erase(k);
  }
}


TEST(NmWhitebox, SeekFindsInsertedLeaf) {
  nm_tree<long> t;
  t.insert(50);
  t.insert(25);
  t.insert(75);
  EXPECT_TRUE(access::leaf_key_matches(t, 25));
  EXPECT_TRUE(access::leaf_key_matches(t, 50));
  EXPECT_TRUE(access::leaf_key_matches(t, 75));
  EXPECT_FALSE(access::leaf_key_matches(t, 60));
}

TEST(NmWhitebox, SeekOnEmptyTreeEndsAtInf0Leaf) {
  nm_tree<long> t;
  EXPECT_FALSE(access::leaf_key_matches(t, 1));
  // Sentinel structure of Fig. 3: ℝ, 𝕊, three sentinel leaves.
  EXPECT_EQ(access::reachable_node_count(t), 5u);
}

TEST(NmWhitebox, InjectionFlagsTheLeafEdge) {
  nm_tree<long> t;
  t.insert(10);
  t.insert(20);
  ASSERT_TRUE(access::inject_stalled_delete(t, 10));
  auto [flagged, tagged] = access::edge_marks(t, 10);
  EXPECT_TRUE(flagged);
  EXPECT_FALSE(tagged);
  // A flagged-but-unremoved leaf is still physically present: the
  // delete has not linearized (its linearization point is the removal
  // CAS), so searches still find it.
  EXPECT_TRUE(t.contains(10));
}

TEST(NmWhitebox, SecondInjectionOnSameEdgeFails) {
  nm_tree<long> t;
  t.insert(10);
  t.insert(20);
  ASSERT_TRUE(access::inject_stalled_delete(t, 10));
  EXPECT_FALSE(access::inject_stalled_delete(t, 10));  // edge now frozen
}

TEST(NmWhitebox, CleanupCompletesAStalledDelete) {
  nm_tree<long> t;
  t.insert(10);
  t.insert(20);
  ASSERT_TRUE(access::inject_stalled_delete(t, 10));
  EXPECT_TRUE(access::run_cleanup(t, 10));
  EXPECT_FALSE(t.contains(10));
  EXPECT_TRUE(t.contains(20));
  EXPECT_EQ(t.validate(), "");
}

TEST(NmWhitebox, InsertHelpsStalledDeleteAtItsInjectionPoint) {
  // Insert(15) must land under the same parent whose child edge carries
  // the stalled delete's flag; its CAS fails, it helps, then retries.
  nm_tree<long> t;
  t.insert(10);
  t.insert(20);
  ASSERT_TRUE(access::inject_stalled_delete(t, 10));
  EXPECT_TRUE(t.insert(15));
  EXPECT_FALSE(t.contains(10)) << "helping should have removed 10";
  EXPECT_TRUE(t.contains(15));
  EXPECT_TRUE(t.contains(20));
  EXPECT_EQ(t.validate(), "");
}

TEST(NmWhitebox, EraseOfSiblingRelocatesTheStalledFlag) {
  // 10 and 20 are sibling leaves under one parent; delete(10) stalled
  // after flagging. erase(20) still completes — its own flag CAS targets
  // the *other* edge of the shared parent — and its cleanup relocates
  // 10's flagged edge up to the ancestor (the flag-copy of Alg. 4).
  // 10 itself is NOT removed: its delete has not linearized.
  nm_tree<long> t;
  t.insert(10);
  t.insert(20);
  ASSERT_TRUE(access::inject_stalled_delete(t, 10));
  EXPECT_TRUE(t.erase(20));
  EXPECT_FALSE(t.contains(20));
  EXPECT_TRUE(t.contains(10)) << "10's delete is still pending, not done";
  auto [flagged, tagged] = access::edge_marks(t, 10);
  EXPECT_TRUE(flagged) << "the stalled flag must survive the relocation";
  EXPECT_FALSE(tagged);
  // A helper can now finish the stalled delete against the new edge.
  EXPECT_TRUE(access::run_cleanup(t, 10));
  EXPECT_FALSE(t.contains(10));
  EXPECT_EQ(t.size_slow(), 0u);
  EXPECT_EQ(t.validate(), "");
}

TEST(NmWhitebox, CleanupAfterBtsAlsoCompletes) {
  // Stall the delete *between* its BTS and its ancestor CAS.
  nm_tree<long> t;
  t.insert(10);
  t.insert(20);
  t.insert(30);
  ASSERT_TRUE(access::inject_stalled_delete_tagged(t, 20));
  EXPECT_TRUE(access::run_cleanup(t, 20));
  EXPECT_FALSE(t.contains(20));
  EXPECT_TRUE(t.contains(10));
  EXPECT_TRUE(t.contains(30));
  EXPECT_EQ(t.validate(), "");
}

// Builds the Fig. 2 chain. Tree (client keys 100,50,75,60,70,65):
//
//   int(∞₀) ─ int(100) ─ int(75) ─ int(60) ─┬─ leaf(50)
//                                           └─ int(70) ─┬─ int(65) ─┬─ leaf(60)
//                                                       │           └─ leaf(65)
//                                                       └─ leaf(70)
//
// Stalled deletes of 50, 70 and 60 flag their leaf edges and tag the
// path edges (int60→int70), (int70→int65) and the sibling edge
// (int65→leaf65) — the dying region of Fig. 2, with leaf(65) playing
// the reattached subtree K.
template <typename Tree>
void build_fig2_chain(Tree& t) {
  for (long k : {100L, 50L, 75L, 60L, 70L, 65L}) ASSERT_TRUE(t.insert(k));
  ASSERT_TRUE(access::inject_stalled_delete_tagged(t, 50));
  ASSERT_TRUE(access::inject_stalled_delete_tagged(t, 70));
  ASSERT_TRUE(access::inject_stalled_delete_tagged(t, 60));
}

TEST(NmWhitebox, SeekSkipsTaggedChainForAncestorSuccessor) {
  // Seeking a key whose access path crosses tagged edges into internal
  // nodes must report successor != parent: ancestor/successor hop over
  // the dying region so cleanup's CAS excises all of it (Fig. 2).
  nm_tree<long> t;
  build_fig2_chain(t);
  EXPECT_TRUE(access::seek_skipped_tagged_region(t, 60));
  EXPECT_TRUE(access::seek_skipped_tagged_region(t, 65));
  // A key that leaves the path before the first tagged edge does not.
  EXPECT_FALSE(access::seek_skipped_tagged_region(t, 100));
}

TEST(NmWhitebox, MultiLeafRemovalExcisesAChain) {
  // One cleanup of the *deepest* delete (60, the G of Fig. 2) removes
  // the entire dead region — the other stalled deletes' leaves (50, 70;
  // the H/I/J of Fig. 2) leave the tree in the same CAS.
  nm_tree<long> t;
  build_fig2_chain(t);
  const std::size_t before = access::reachable_node_count(t);

  EXPECT_TRUE(access::run_cleanup(t, 60));
  EXPECT_FALSE(t.contains(50));
  EXPECT_FALSE(t.contains(60));
  EXPECT_FALSE(t.contains(70));
  EXPECT_TRUE(t.contains(65)) << "the reattached subtree K must survive";
  EXPECT_TRUE(t.contains(75));
  EXPECT_TRUE(t.contains(100));
  EXPECT_EQ(t.validate(), "");
  const std::size_t after = access::reachable_node_count(t);
  // 3 flagged leaves + 3 chain internals left in one CAS.
  EXPECT_EQ(before - after, 6u);
}

TEST(NmWhitebox, AccessPathShrinksAfterCleanup) {
  // The lock-freedom argument (§3.3): every failed cleanup shortens the
  // access path or moves the last untagged edge rootward. Observable
  // corollary: depth strictly decreases across a completed cleanup.
  nm_tree<long> t;
  for (long k : {40L, 20L, 30L, 25L}) ASSERT_TRUE(t.insert(k));
  const std::size_t depth_before = access::access_path_depth(t, 25);
  ASSERT_TRUE(access::inject_stalled_delete(t, 25));
  ASSERT_TRUE(access::run_cleanup(t, 25));
  EXPECT_LT(access::access_path_depth(t, 25), depth_before);
}

TEST(NmWhitebox, FlagIsCopiedToReplacementEdge) {
  // Delete(20) stalls after flagging; delete(10) completes. The edge the
  // ancestor now holds toward 20's leaf must carry the copied flag
  // (Alg. 4 line 107-108), so 20's delete can still finish.
  nm_tree<long> t;
  t.insert(10);
  t.insert(20);
  ASSERT_TRUE(access::inject_stalled_delete(t, 20));  // sibling flagged
  // Now fully remove 10: its cleanup tags the (already flagged) sibling
  // edge and must copy the flag onto the new ancestor edge.
  EXPECT_TRUE(t.erase(10));
  auto [flagged, tagged] = access::edge_marks(t, 20);
  EXPECT_TRUE(flagged) << "flag must survive the edge replacement";
  EXPECT_FALSE(tagged);
  // And the stalled delete of 20 can be finished by a helper.
  EXPECT_TRUE(access::run_cleanup(t, 20));
  EXPECT_FALSE(t.contains(20));
  EXPECT_EQ(t.validate(), "");
}

TEST(NmWhitebox, NodeCountAccountsSentinelsPlusTwoPerKey) {
  // External tree: every client key is one leaf plus one internal node
  // above it; the empty tree has 5 sentinel nodes (Fig. 3).
  nm_tree<long> t;
  EXPECT_EQ(access::reachable_node_count(t), 5u);
  t.insert(1);
  EXPECT_EQ(access::reachable_node_count(t), 7u);
  t.insert(2);
  EXPECT_EQ(access::reachable_node_count(t), 9u);
  t.erase(1);
  EXPECT_EQ(access::reachable_node_count(t), 7u);
  t.erase(2);
  EXPECT_EQ(access::reachable_node_count(t), 5u);
}


TEST(NmWhitebox, CasOnlyTaggingProducesIdenticalMarkingState) {
  // The paper's CAS-only variant must leave bit-identical edge state
  // after the same operations.
  nm_tree<long> bts;
  nm_tree<long, std::less<long>, reclaim::leaky, stats::none,
          tag_policy::cas_only>
      cas;
  for (long k : {10L, 20L, 30L}) {
    bts.insert(k);
    cas.insert(k);
  }
  ASSERT_TRUE(access::inject_stalled_delete_tagged(bts, 20));
  ASSERT_TRUE(access::inject_stalled_delete_tagged(cas, 20));
  const auto [bf, bt] = access::edge_marks(bts, 20);
  const auto [cf, ct] = access::edge_marks(cas, 20);
  EXPECT_EQ(bf, cf);
  EXPECT_EQ(bt, ct);
  EXPECT_TRUE(access::run_cleanup(bts, 20));
  EXPECT_TRUE(access::run_cleanup(cas, 20));
  EXPECT_EQ(bts.validate(), "");
  EXPECT_EQ(cas.validate(), "");
}

TEST(NmWhitebox, HazardSeekReturnsSameRecordAsPlainSeek) {
  // On a quiescent tree the validated (hazard) seek and the plain seek
  // must produce the same four-node record for every key.
  nm_tree<long> plain;
  nm_tree<long, std::less<long>, reclaim::hazard> hp;
  pcg32_build_both(plain, hp);
  for (long k = -5; k < 130; ++k) {
    EXPECT_EQ(access::leaf_key_matches(plain, k),
              access::leaf_key_matches(hp, k))
        << k;
    EXPECT_EQ(access::access_path_depth(plain, k),
              access::access_path_depth(hp, k))
        << k;
  }
}

TEST(NmWhitebox, HazardSeekSkipsTaggedChainsToo) {
  // The Fig. 2 chain with the hazard-validated seek: ancestor/successor
  // semantics (and cleanup) must be unchanged by the protection layer.
  nm_tree<long, std::less<long>, reclaim::hazard> t;
  build_fig2_chain(t);
  EXPECT_TRUE(access::seek_skipped_tagged_region(t, 60));
  EXPECT_TRUE(access::run_cleanup(t, 60));
  EXPECT_FALSE(t.contains(50));
  EXPECT_FALSE(t.contains(60));
  EXPECT_FALSE(t.contains(70));
  EXPECT_TRUE(t.contains(65));
  EXPECT_EQ(t.validate(), "");
}

TEST(NmWhitebox, StalledDeleteBlocksReuseOfInjectionPoint) {
  // Once an edge is flagged, no second modify operation can claim the
  // same injection point until the delete completes — the coordination
  // rule that replaces EFRB's Info records.
  nm_tree<long> t;
  t.insert(10);
  t.insert(20);
  ASSERT_TRUE(access::inject_stalled_delete(t, 10));
  // Simulating another delete's injection on the same edge must fail...
  EXPECT_FALSE(access::inject_stalled_delete(t, 10));
  // ...until a helper completes the first one.
  EXPECT_TRUE(access::run_cleanup(t, 10));
  EXPECT_FALSE(t.contains(10));
  // Fresh key at the same position gets a fresh, claimable edge.
  ASSERT_TRUE(t.insert(10));
  EXPECT_TRUE(access::inject_stalled_delete(t, 10));
  EXPECT_TRUE(access::run_cleanup(t, 10));
  EXPECT_EQ(t.validate(), "");
}

}  // namespace
}  // namespace lfbst
