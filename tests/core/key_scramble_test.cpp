// Tests for the adversarial-shape mitigation (core/key_scramble.hpp):
// the scramble/unscramble bijection (exactness, every width, edge
// keys, full-domain injectivity), the scramble_less comparator's
// strict weak order, the scrambled_set boundary adapter against a
// std::set oracle under all three reclaimers and under sharding, and
// the property the whole layer exists for — sequential and attack
// insertion orders no longer degenerate the tree into a spine.
#include "core/key_scramble.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "core/natarajan_tree.hpp"
#include "harness/key_streams.hpp"
#include "obs/metrics.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/hazard_reclaimer.hpp"
#include "shard/router.hpp"
#include "shard/sharded_set.hpp"

namespace lfbst {
namespace {

// --- the bijection: exact inversion at compile time -------------------
//
// The header's comment promises unscramble_key(scramble_key(k, s), s)
// == k for every key and seed, constexpr; these static_asserts are
// that promise's pin. Edge keys cover the all-zeros, all-ones and
// sign-boundary words where a truncated shift or a sign-extension slip
// would show first.

template <typename Key>
constexpr bool round_trips(Key k, std::uint64_t seed) {
  return unscramble_key(scramble_key(k, seed), seed) == k &&
         scramble_key(unscramble_key(k, seed), seed) == k;
}

template <typename Key>
constexpr bool edge_keys_round_trip(std::uint64_t seed) {
  return round_trips<Key>(Key{0}, seed) && round_trips<Key>(Key{1}, seed) &&
         round_trips<Key>(std::numeric_limits<Key>::min(), seed) &&
         round_trips<Key>(std::numeric_limits<Key>::max(), seed);
}

static_assert(edge_keys_round_trip<std::int16_t>(0));
static_assert(edge_keys_round_trip<std::uint16_t>(0));
static_assert(edge_keys_round_trip<std::int32_t>(0));
static_assert(edge_keys_round_trip<std::uint32_t>(0));
static_assert(edge_keys_round_trip<std::int64_t>(0));
static_assert(edge_keys_round_trip<std::uint64_t>(0));
static_assert(edge_keys_round_trip<std::int64_t>(1));
static_assert(edge_keys_round_trip<std::int64_t>(0x9E3779B97F4A7C15ULL));
static_assert(edge_keys_round_trip<std::uint32_t>(0xFFFFFFFFFFFFFFFFULL));
static_assert(round_trips<std::int64_t>(-1, 7));
static_assert(round_trips<std::int32_t>(-123456789, 42));
static_assert(round_trips<long>(1234567890123456789L, 3));

// The mix is not the identity (a degenerate "fix" that left keys alone
// would pass every round-trip test above).
static_assert(scramble_key<std::int64_t>(1, 0) != 1);
static_assert(scramble_key<std::uint32_t>(2, 0) != 2u);

TEST(ScrambleKey, RandomSweepRoundTripsAcrossSeeds) {
  pcg32 rng(0xC0FFEEu);
  const std::uint64_t seeds[] = {0, 1, 0xDEADBEEFu, 0x9E3779B97F4A7C15ULL};
  for (const std::uint64_t seed : seeds) {
    for (int i = 0; i < 20000; ++i) {
      const auto k64 = static_cast<std::int64_t>(rng.next64());
      EXPECT_EQ(unscramble_key(scramble_key(k64, seed), seed), k64);
      const auto k32 = rng();
      EXPECT_EQ(unscramble_key(scramble_key(k32, seed), seed), k32);
    }
  }
}

TEST(ScrambleKey, ExhaustiveBijectionOnSixteenBitDomain) {
  // A bijection admits no collisions; over a 2^16 domain that is
  // checkable exhaustively. Distinctness of all images plus the
  // round-trip sweep above pins injectivity *and* surjectivity.
  for (const std::uint64_t seed : {std::uint64_t{0}, std::uint64_t{77}}) {
    std::vector<bool> seen(1u << 16, false);
    for (std::uint32_t v = 0; v < (1u << 16); ++v) {
      const auto img = static_cast<std::uint16_t>(
          scramble_key(static_cast<std::uint16_t>(v), seed));
      EXPECT_FALSE(seen[img]) << "collision at preimage " << v;
      seen[img] = true;
    }
  }
}

TEST(ScrambleKey, SeedChangesThePermutation) {
  int moved = 0;
  for (std::int64_t k = 0; k < 256; ++k) {
    if (scramble_key(k, 1) != scramble_key(k, 2)) ++moved;
  }
  EXPECT_GT(moved, 200);  // avalanche: almost every image differs
}

// --- scramble_less: a strict weak order ------------------------------

TEST(ScrambleLess, InducesAStrictTotalOrderOnDistinctKeys) {
  const scramble_less<int> cmp{/*seed=*/5};
  pcg32 rng(1234u);
  for (int i = 0; i < 5000; ++i) {
    const int a = static_cast<int>(rng());
    const int b = static_cast<int>(rng());
    EXPECT_FALSE(cmp(a, a));  // irreflexive
    if (a == b) continue;
    // The bijection is injective, so distinct keys have distinct
    // images: exactly one direction compares true.
    EXPECT_NE(cmp(a, b), cmp(b, a)) << a << " vs " << b;
  }
}

TEST(ScrambleLess, SortsToAPermutationInScrambledOrder) {
  std::vector<int> keys(1000);
  for (int i = 0; i < 1000; ++i) keys[i] = i;
  const scramble_less<int> cmp{/*seed=*/9};
  std::sort(keys.begin(), keys.end(), cmp);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end(), cmp));
  EXPECT_FALSE(std::is_sorted(keys.begin(), keys.end()));  // order mixed
  std::sort(keys.begin(), keys.end());
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(keys[i], i);  // nothing lost
}

// --- scrambled_set vs oracle, all three reclaimers -------------------

using leaky_tree = nm_tree<long>;
using epoch_tree = nm_tree<long, std::less<long>, reclaim::epoch>;
using hazard_tree = nm_tree<long, std::less<long>, reclaim::hazard>;

template <typename Set>
void mixed_history_vs_oracle(Set& s, std::uint32_t rng_seed) {
  std::set<long> oracle;
  pcg32 rng(rng_seed);
  for (int i = 0; i < 6000; ++i) {
    const long k = static_cast<long>(rng.bounded(512)) - 256;  // negatives too
    switch (rng.bounded(3)) {
      case 0:
        EXPECT_EQ(s.insert(k), oracle.insert(k).second) << "insert " << k;
        break;
      case 1:
        EXPECT_EQ(s.erase(k), oracle.erase(k) != 0) << "erase " << k;
        break;
      default:
        EXPECT_EQ(s.contains(k), oracle.count(k) != 0) << "contains " << k;
    }
  }
  EXPECT_EQ(s.size_slow(), oracle.size());
  EXPECT_EQ(s.validate(), "");
  // Read-out must surface the client's keys, never scrambled images.
  std::set<long> drained;
  s.for_each_slow([&](long k) { drained.insert(k); });
  EXPECT_EQ(drained, oracle);
}

TEST(ScrambledSet, OracleHistoryLeaky) {
  scrambled_set<leaky_tree> s(0xABCDEF);
  mixed_history_vs_oracle(s, 11u);
}

TEST(ScrambledSet, OracleHistoryEpoch) {
  scrambled_set<epoch_tree> s(0xABCDEF);
  mixed_history_vs_oracle(s, 22u);
}

TEST(ScrambledSet, OracleHistoryHazard) {
  scrambled_set<hazard_tree> s(0xABCDEF);
  mixed_history_vs_oracle(s, 33u);
}

TEST(ScrambledSet, OracleHistorySharded) {
  // The composition the server runs: adapter ABOVE the router, so the
  // shards partition scrambled space. Full-domain router — scrambled
  // keys land anywhere in the key type's range.
  scrambled_set<shard::sharded_set<leaky_tree>> s(
      0xABCDEF, shard::range_router<long>(8));
  mixed_history_vs_oracle(s, 44u);
}

TEST(ScrambledSet, ShardingSpreadsASequentialStream) {
  // The point of composing above the router: a sequential client
  // stream, which would pile into one shard of a raw sharded_set whose
  // domain it attacks, spreads near-uniformly once scrambled.
  scrambled_set<shard::sharded_set<leaky_tree>> s(
      7, shard::range_router<long>(8));
  constexpr long n = 4096;
  for (long k = 0; k < n; ++k) ASSERT_TRUE(s.insert(k));
  for (std::size_t i = 0; i < s.shard_count(); ++i) {
    const std::size_t held = s.shard(i).size_slow();
    EXPECT_GT(held, static_cast<std::size_t>(n / 32)) << "shard " << i;
    EXPECT_LT(held, static_cast<std::size_t>(n / 2)) << "shard " << i;
  }
  EXPECT_EQ(s.size_slow(), static_cast<std::size_t>(n));
}

// --- scans: lowered to filtered enumeration, still exact -------------

TEST(ScrambledSet, RangeScansMatchOracle) {
  scrambled_set<leaky_tree> s(3);
  std::set<long> oracle;
  pcg32 rng(55u);
  for (int i = 0; i < 2000; ++i) {
    const long k = static_cast<long>(rng.bounded(1000));
    s.insert(k);
    oracle.insert(k);
  }
  for (int trial = 0; trial < 50; ++trial) {
    long lo = static_cast<long>(rng.bounded(1000));
    long hi = static_cast<long>(rng.bounded(1000));
    if (hi < lo) std::swap(lo, hi);
    std::vector<long> expect_half(oracle.lower_bound(lo),
                                  oracle.lower_bound(hi));
    EXPECT_EQ(s.range_scan(lo, hi), expect_half) << lo << ".." << hi;
    std::vector<long> expect_closed(oracle.lower_bound(lo),
                                    oracle.upper_bound(hi));
    EXPECT_EQ(s.range_scan_closed(lo, hi), expect_closed) << lo << ".." << hi;
  }
}

TEST(ScrambledSet, PagedScanReassemblesTheFullRange) {
  scrambled_set<leaky_tree> s(3);
  std::set<long> oracle;
  pcg32 rng(66u);
  for (int i = 0; i < 600; ++i) {
    const long k = static_cast<long>(rng.bounded(2048));
    s.insert(k);
    oracle.insert(k);
  }
  // Zero budget: a pure continuation marker, no keys consumed.
  const auto empty_page = s.range_scan_limit(0, 2048, 0);
  EXPECT_TRUE(empty_page.keys.empty());
  EXPECT_TRUE(empty_page.truncated);
  EXPECT_EQ(empty_page.resume_key, 0);

  std::vector<long> paged;
  long cursor = 0;
  for (;;) {
    const auto page = s.range_scan_limit(cursor, 2048, 37);
    paged.insert(paged.end(), page.keys.begin(), page.keys.end());
    EXPECT_TRUE(std::is_sorted(page.keys.begin(), page.keys.end()));
    if (!page.truncated) break;
    EXPECT_GT(page.resume_key, cursor);
    cursor = page.resume_key;
  }
  EXPECT_EQ(paged, std::vector<long>(oracle.begin(), oracle.end()));
}

// --- the property this layer exists for ------------------------------
//
// Sequential insertion builds an O(n) spine in the raw external BST;
// through the adapter the same stream takes random-insertion shape.
// These bounds mirror the perf gate (tools/check_perf_regression.py
// check_shape): spine floor n/16, balanced ceiling 2*log2(n) + 8.

constexpr std::size_t log2_floor(std::size_t n) {
  std::size_t b = 0;
  while (n >>= 1) ++b;
  return b;
}

TEST(ScrambledSet, SequentialInsertsNoLongerBuildASpine) {
  constexpr long n = 1024;
  leaky_tree raw;
  scrambled_set<leaky_tree> mixed(1);
  for (long k = 0; k < n; ++k) {
    ASSERT_TRUE(raw.insert(k));
    ASSERT_TRUE(mixed.insert(k));
  }
  EXPECT_GE(raw.height_slow(), static_cast<std::size_t>(n) / 16);
  EXPECT_LE(mixed.height_slow(), 4 * log2_floor(n));
  EXPECT_EQ(mixed.size_slow(), static_cast<std::size_t>(n));
}

using recording_tree = nm_tree<long, std::less<long>, reclaim::leaky,
                               obs::recording>;

template <typename Set>
void run_attack(Set& s, harness::key_stream_kind kind, long n) {
  for (long i = 0; i < n; ++i) {
    s.insert(static_cast<long>(harness::key_stream_at(
        kind, static_cast<std::uint64_t>(i), static_cast<std::uint64_t>(n))));
  }
  for (long i = 0; i < n; ++i) {
    (void)s.contains(static_cast<long>(harness::key_stream_at(
        kind, static_cast<std::uint64_t>(i), static_cast<std::uint64_t>(n))));
  }
}

TEST(ScrambledSet, AttackStreamSeekDepthStaysBounded) {
  constexpr long n = 2048;
  const double bound = 2.0 * static_cast<double>(log2_floor(n)) + 8.0;
  for (const auto kind : {harness::key_stream_kind::sequential,
                          harness::key_stream_kind::adaptive_attack}) {
    // Self-check first (exactly as the gate does): the raw tree under
    // this stream really is a spine, so the bounded scrambled depth
    // below is a mitigation, not a vacuous pass.
    recording_tree raw;
    run_attack(raw, kind, n);
    EXPECT_GE(raw.stats().seek_depth_histogram().max(),
              static_cast<std::uint64_t>(n) / 16)
        << harness::key_stream_name(kind);

    scrambled_set<recording_tree> mixed(0x5EED);
    run_attack(mixed, kind, n);
    const auto hist = mixed.stats().seek_depth_histogram();
    EXPECT_GT(hist.count(), 0u);
    EXPECT_LE(static_cast<double>(hist.value_at_percentile(99.0)), bound)
        << harness::key_stream_name(kind);
  }
}

}  // namespace
}  // namespace lfbst
