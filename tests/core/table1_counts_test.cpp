// Pins the static per-operation costs of Table 1 of the paper:
//
//   Algorithm          objects alloc'd      atomics executed
//                      insert  delete       insert  delete
//   Ellen et al.         4       1            3       4
//   Howley & Jones       2       1            3      up to 9
//   This work (NM)       2       0            1       3
//
// Measured here in the absence of contention (single thread) with the
// counting stats policy. These are exact equalities for NM and EFRB and
// for HJ inserts; HJ deletes depend on the victim's child count (4 for
// ≤1 child, 9 for the relocation path), so both cases are pinned.
#include <gtest/gtest.h>

#include "baselines/efrb_tree.hpp"
#include "baselines/hj_tree.hpp"
#include "core/natarajan_tree.hpp"
#include "core/stats.hpp"

namespace lfbst {
namespace {

using counting = stats::counting;

template <typename F>
stats::op_record measure(F&& op) {
  const auto before = counting::snapshot();
  op();
  return counting::delta(before);
}

// --- NM-BST ----------------------------------------------------------------

using nm_counted =
    nm_tree<long, std::less<long>, reclaim::leaky, counting>;

TEST(Table1, NmInsertIsOneCasTwoAllocations) {
  nm_counted t;
  t.insert(50);
  const auto d = measure([&] { ASSERT_TRUE(t.insert(25)); });
  EXPECT_EQ(d.objects_allocated, 2u);  // newInternal + newLeaf
  EXPECT_EQ(d.cas_executed, 1u);       // the single child swing
  EXPECT_EQ(d.bts_executed, 0u);
  EXPECT_EQ(d.atomics(), 1u);
}

TEST(Table1, NmDeleteIsThreeAtomicsZeroAllocations) {
  nm_counted t;
  t.insert(50);
  t.insert(25);
  const auto d = measure([&] { ASSERT_TRUE(t.erase(25)); });
  EXPECT_EQ(d.objects_allocated, 0u);
  EXPECT_EQ(d.cas_executed, 2u);  // injection flag + ancestor swing
  EXPECT_EQ(d.bts_executed, 1u);  // sibling tag
  EXPECT_EQ(d.atomics(), 3u);
}

TEST(Table1, NmSearchExecutesNoAtomics) {
  nm_counted t;
  t.insert(50);
  const auto d = measure([&] {
    ASSERT_TRUE(t.contains(50));
    ASSERT_FALSE(t.contains(51));
  });
  EXPECT_EQ(d.atomics(), 0u);
  EXPECT_EQ(d.objects_allocated, 0u);
}

TEST(Table1, NmFailedInsertAllocatesNothingExtra) {
  nm_counted t;
  t.insert(50);
  const auto d = measure([&] { ASSERT_FALSE(t.insert(50)); });
  EXPECT_EQ(d.objects_allocated, 0u);
  EXPECT_EQ(d.atomics(), 0u);
}

TEST(Table1, NmFailedDeleteExecutesNothing) {
  nm_counted t;
  t.insert(50);
  const auto d = measure([&] { ASSERT_FALSE(t.erase(99)); });
  EXPECT_EQ(d.objects_allocated, 0u);
  EXPECT_EQ(d.atomics(), 0u);
}

TEST(Table1, NmCostsAreIndependentOfTreeSize) {
  // The counts are per-operation constants, not functions of n.
  nm_counted t;
  for (long k = 0; k < 1000; ++k) t.insert(k * 2);
  const auto di = measure([&] { ASSERT_TRUE(t.insert(1001)); });
  EXPECT_EQ(di.atomics(), 1u);
  EXPECT_EQ(di.objects_allocated, 2u);
  const auto dd = measure([&] { ASSERT_TRUE(t.erase(500)); });
  EXPECT_EQ(dd.atomics(), 3u);
  EXPECT_EQ(dd.objects_allocated, 0u);
}

// --- EFRB-BST ----------------------------------------------------------------

using efrb_counted =
    efrb_tree<long, std::less<long>, reclaim::leaky, counting>;

TEST(Table1, EfrbInsertIsThreeCasFourAllocations) {
  efrb_counted t;
  t.insert(50);
  const auto d = measure([&] { ASSERT_TRUE(t.insert(25)); });
  // Leaf, copied sibling leaf, internal node, IInfo record.
  EXPECT_EQ(d.objects_allocated, 4u);
  // IFLAG + child CAS + unflag.
  EXPECT_EQ(d.cas_executed, 3u);
  EXPECT_EQ(d.atomics(), 3u);
}

TEST(Table1, EfrbDeleteIsFourCasOneAllocation) {
  efrb_counted t;
  t.insert(50);
  t.insert(25);
  const auto d = measure([&] { ASSERT_TRUE(t.erase(25)); });
  EXPECT_EQ(d.objects_allocated, 1u);  // DInfo record
  // DFLAG(gp) + MARK(p) + child CAS + unflag(gp).
  EXPECT_EQ(d.cas_executed, 4u);
  EXPECT_EQ(d.atomics(), 4u);
}

TEST(Table1, EfrbSearchExecutesNoAtomics) {
  efrb_counted t;
  t.insert(50);
  const auto d = measure([&] { ASSERT_TRUE(t.contains(50)); });
  EXPECT_EQ(d.atomics(), 0u);
}

// --- HJ-BST ----------------------------------------------------------------

using hj_counted = hj_tree<long, std::less<long>, reclaim::leaky, counting>;

TEST(Table1, HjInsertIsThreeCasTwoAllocations) {
  hj_counted t;
  t.insert(50);
  const auto d = measure([&] { ASSERT_TRUE(t.insert(25)); });
  EXPECT_EQ(d.objects_allocated, 2u);  // node + ChildCASOp
  EXPECT_EQ(d.cas_executed, 3u);       // op flag + child CAS + unflag
  EXPECT_EQ(d.atomics(), 3u);
}

TEST(Table1, HjLeafDeleteIsFourCas) {
  hj_counted t;
  t.insert(50);
  t.insert(25);  // 25 is a leaf (no children)
  const auto d = measure([&] { ASSERT_TRUE(t.erase(25)); });
  // MARK + (pred flag + child CAS + unflag) in helpMarked.
  EXPECT_EQ(d.cas_executed, 4u);
  EXPECT_EQ(d.objects_allocated, 1u);  // the splice ChildCASOp
}

TEST(Table1, HjTwoChildDeleteIsUpToNineAtomics) {
  hj_counted t;
  t.insert(50);
  t.insert(25);
  t.insert(75);  // 50 has two children: relocation path
  const auto d = measure([&] { ASSERT_TRUE(t.erase(50)); });
  // RelocateOp install + dest install + state CAS + key CAS + dest
  // unflag + successor MARK + helpMarked(3) = 9 — the paper's ceiling.
  EXPECT_EQ(d.cas_executed, 9u);
  EXPECT_LE(d.objects_allocated, 2u);  // RelocateOp + splice ChildCASOp
}

TEST(Table1, HjSearchExecutesNoAtomicsWhenClean) {
  hj_counted t;
  t.insert(50);
  const auto d = measure([&] { ASSERT_TRUE(t.contains(50)); });
  EXPECT_EQ(d.atomics(), 0u);
}

// --- cross-algorithm relations the paper's §5 calls out --------------------

TEST(Table1, NmExecutesStrictlyFewerAtomicsThanBothRivals) {
  nm_counted nm;
  efrb_counted efrb;
  hj_counted hj;
  nm.insert(50);
  efrb.insert(50);
  hj.insert(50);

  const auto nm_i = measure([&] { nm.insert(25); });
  const auto efrb_i = measure([&] { efrb.insert(25); });
  const auto hj_i = measure([&] { hj.insert(25); });
  EXPECT_LT(nm_i.atomics(), efrb_i.atomics());
  EXPECT_LT(nm_i.atomics(), hj_i.atomics());
  EXPECT_LT(nm_i.objects_allocated, efrb_i.objects_allocated);

  const auto nm_d = measure([&] { nm.erase(25); });
  const auto efrb_d = measure([&] { efrb.erase(25); });
  const auto hj_d = measure([&] { hj.erase(25); });
  EXPECT_LT(nm_d.atomics(), efrb_d.atomics());
  EXPECT_LT(nm_d.atomics(), hj_d.atomics());
  EXPECT_LT(nm_d.objects_allocated, efrb_d.objects_allocated);
}

}  // namespace
}  // namespace lfbst
