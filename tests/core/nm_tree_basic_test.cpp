// Sequential black-box tests of the NM-BST: dictionary semantics,
// duplicate handling, structural invariants after randomized churn, all
// policy combinations (reclaimer × tagging), and adversarial key orders.
#include "core/natarajan_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "reclaim/epoch.hpp"

namespace lfbst {
namespace {

TEST(NmTreeBasic, EmptyTreeBehaviour) {
  nm_tree<long> t;
  EXPECT_FALSE(t.contains(0));
  EXPECT_FALSE(t.contains(42));
  EXPECT_FALSE(t.erase(42));
  EXPECT_EQ(t.size_slow(), 0u);
  EXPECT_TRUE(t.empty_slow());
  EXPECT_EQ(t.validate(), "");
}

TEST(NmTreeBasic, InsertThenContains) {
  nm_tree<long> t;
  EXPECT_TRUE(t.insert(5));
  EXPECT_TRUE(t.contains(5));
  EXPECT_FALSE(t.contains(4));
  EXPECT_FALSE(t.contains(6));
  EXPECT_EQ(t.size_slow(), 1u);
}

TEST(NmTreeBasic, DuplicateInsertReturnsFalse) {
  nm_tree<long> t;
  EXPECT_TRUE(t.insert(5));
  EXPECT_FALSE(t.insert(5));
  EXPECT_EQ(t.size_slow(), 1u);
}

TEST(NmTreeBasic, EraseRemovesExactlyTheKey) {
  nm_tree<long> t;
  t.insert(1);
  t.insert(2);
  t.insert(3);
  EXPECT_TRUE(t.erase(2));
  EXPECT_FALSE(t.contains(2));
  EXPECT_TRUE(t.contains(1));
  EXPECT_TRUE(t.contains(3));
  EXPECT_FALSE(t.erase(2));
  EXPECT_EQ(t.size_slow(), 2u);
}

TEST(NmTreeBasic, EraseToEmptyAndReinsert) {
  nm_tree<long> t;
  for (long k = 0; k < 10; ++k) t.insert(k);
  for (long k = 0; k < 10; ++k) EXPECT_TRUE(t.erase(k));
  EXPECT_EQ(t.size_slow(), 0u);
  EXPECT_EQ(t.validate(), "");
  for (long k = 0; k < 10; ++k) EXPECT_TRUE(t.insert(k));
  EXPECT_EQ(t.size_slow(), 10u);
}

TEST(NmTreeBasic, NegativeAndExtremeKeys) {
  nm_tree<long> t;
  const std::vector<long> keys{0, -1, 1, LONG_MIN, LONG_MAX, -999999,
                               999999};
  for (long k : keys) EXPECT_TRUE(t.insert(k));
  for (long k : keys) EXPECT_TRUE(t.contains(k));
  EXPECT_EQ(t.size_slow(), keys.size());
  EXPECT_EQ(t.validate(), "");
  for (long k : keys) EXPECT_TRUE(t.erase(k));
  EXPECT_EQ(t.size_slow(), 0u);
}

TEST(NmTreeBasic, AscendingInsertionKeepsOrder) {
  nm_tree<long> t;
  for (long k = 0; k < 5000; ++k) ASSERT_TRUE(t.insert(k));
  std::vector<long> seen;
  t.for_each_slow([&seen](long k) { seen.push_back(k); });
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_EQ(seen.size(), 5000u);
  EXPECT_EQ(t.validate(), "");
}

TEST(NmTreeBasic, DescendingInsertionKeepsOrder) {
  nm_tree<long> t;
  for (long k = 4999; k >= 0; --k) ASSERT_TRUE(t.insert(k));
  std::vector<long> seen;
  t.for_each_slow([&seen](long k) { seen.push_back(k); });
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_EQ(seen.size(), 5000u);
  EXPECT_EQ(t.validate(), "");
}

TEST(NmTreeBasic, RandomSoupMatchesStdSet) {
  nm_tree<long> t;
  std::set<long> oracle;
  pcg32 rng(20140215);  // the paper's conference date as seed
  for (int i = 0; i < 100'000; ++i) {
    const long k = rng.bounded(1024);
    switch (rng.bounded(3)) {
      case 0:
        ASSERT_EQ(t.insert(k), oracle.insert(k).second) << "i=" << i;
        break;
      case 1:
        ASSERT_EQ(t.erase(k), oracle.erase(k) > 0) << "i=" << i;
        break;
      default:
        ASSERT_EQ(t.contains(k), oracle.count(k) > 0) << "i=" << i;
    }
  }
  EXPECT_EQ(t.size_slow(), oracle.size());
  EXPECT_EQ(t.validate(), "");
  std::vector<long> seen;
  t.for_each_slow([&seen](long k) { seen.push_back(k); });
  EXPECT_TRUE(std::equal(seen.begin(), seen.end(), oracle.begin(),
                         oracle.end()));
}

TEST(NmTreeBasic, ExternalShapeHeightIsReasonable) {
  // Random insertion order keeps an (external) BST around ~2·log2 n +
  // sentinels; a gross height blowup indicates a broken seek.
  nm_tree<long> t;
  pcg32 rng(1);
  std::set<long> inserted;
  while (inserted.size() < 10'000) {
    const long k = static_cast<long>(rng.next64() % 1'000'000);
    if (inserted.insert(k).second) {
      ASSERT_TRUE(t.insert(k));
    }
  }
  EXPECT_LT(t.height_slow(), 64u);
}

TEST(NmTreeBasic, EpochReclaimerVariant) {
  nm_tree<long, std::less<long>, reclaim::epoch> t;
  std::set<long> oracle;
  pcg32 rng(7);
  for (int i = 0; i < 50'000; ++i) {
    const long k = rng.bounded(512);
    if (rng.bounded(2) == 0) {
      ASSERT_EQ(t.insert(k), oracle.insert(k).second);
    } else {
      ASSERT_EQ(t.erase(k), oracle.erase(k) > 0);
    }
  }
  EXPECT_EQ(t.size_slow(), oracle.size());
  EXPECT_EQ(t.validate(), "");
}

TEST(NmTreeBasic, CasOnlyTaggingVariant) {
  nm_tree<long, std::less<long>, reclaim::leaky, stats::none,
          tag_policy::cas_only>
      t;
  std::set<long> oracle;
  pcg32 rng(9);
  for (int i = 0; i < 50'000; ++i) {
    const long k = rng.bounded(512);
    if (rng.bounded(2) == 0) {
      ASSERT_EQ(t.insert(k), oracle.insert(k).second);
    } else {
      ASSERT_EQ(t.erase(k), oracle.erase(k) > 0);
    }
  }
  EXPECT_EQ(t.size_slow(), oracle.size());
  EXPECT_EQ(t.validate(), "");
}

TEST(NmTreeBasic, CustomComparator) {
  nm_tree<long, std::greater<long>> t;
  for (long k : {5L, 1L, 9L, 3L}) t.insert(k);
  std::vector<long> seen;
  t.for_each_slow([&seen](long k) { seen.push_back(k); });
  EXPECT_EQ(seen, (std::vector<long>{9, 5, 3, 1}));  // descending order
  EXPECT_EQ(t.validate(), "");
}

TEST(NmTreeBasic, StringKeysWithEpochReclaimer) {
  // Non-trivially-destructible keys require the eager reclaimer (the
  // leaky policy static_asserts); exercises destructor paths.
  nm_tree<std::string, std::less<std::string>, reclaim::epoch> t;
  EXPECT_TRUE(t.insert("delta"));
  EXPECT_TRUE(t.insert("alpha"));
  EXPECT_TRUE(t.insert("charlie"));
  EXPECT_FALSE(t.insert("alpha"));
  EXPECT_TRUE(t.contains("charlie"));
  EXPECT_TRUE(t.erase("alpha"));
  EXPECT_FALSE(t.contains("alpha"));
  EXPECT_EQ(t.size_slow(), 2u);
  EXPECT_EQ(t.validate(), "");
}

TEST(NmTreeBasic, FootprintGrowsAndReclaimerReportsPending) {
  nm_tree<long, std::less<long>, reclaim::epoch> t;
  for (long k = 0; k < 1000; ++k) t.insert(k);
  const std::size_t fp = t.footprint_bytes();
  EXPECT_GT(fp, 1000 * 2 * sizeof(void*));
  for (long k = 0; k < 1000; ++k) t.erase(k);
  // Some retired nodes may still be pending (grace period), but never
  // more than what was removed.
  EXPECT_LE(t.reclaimer_pending(), 2u * 1000u + 2u);
}

TEST(NmTreeBasic, AlternatingInsertEraseSameKey) {
  // The smallest possible churn loop; exercises the Fig. 3 empty-tree
  // edge (delete of the last client key repairs the sentinel shape).
  nm_tree<long> t;
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_TRUE(t.insert(42));
    ASSERT_TRUE(t.contains(42));
    ASSERT_TRUE(t.erase(42));
    ASSERT_FALSE(t.contains(42));
  }
  EXPECT_EQ(t.validate(), "");
  EXPECT_EQ(t.size_slow(), 0u);
}

}  // namespace
}  // namespace lfbst
