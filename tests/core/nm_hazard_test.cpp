// Tests for the hazard-pointer-protected NM tree (reclaim::hazard): the
// validated seek, bounded garbage, protection of the seek record and the
// flagged leaf, and heavy concurrent churn with readers — the
// configuration the paper's §3.2 footnote about Michael's hazard
// pointers points to.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/barrier.hpp"
#include "common/rng.hpp"
#include "core/natarajan_tree.hpp"
#include "reclaim/hazard_reclaimer.hpp"

namespace lfbst {
namespace {

using hazard_tree = nm_tree<long, std::less<long>, reclaim::hazard>;

TEST(NmHazard, SequentialSemanticsMatchOracle) {
  hazard_tree t;
  std::set<long> oracle;
  pcg32 rng(404);
  for (int i = 0; i < 80'000; ++i) {
    const long k = rng.bounded(700);
    switch (rng.bounded(3)) {
      case 0:
        ASSERT_EQ(t.insert(k), oracle.insert(k).second) << i;
        break;
      case 1:
        ASSERT_EQ(t.erase(k), oracle.erase(k) > 0) << i;
        break;
      default:
        ASSERT_EQ(t.contains(k), oracle.count(k) > 0) << i;
    }
  }
  EXPECT_EQ(t.size_slow(), oracle.size());
  EXPECT_EQ(t.validate(), "");
}

TEST(NmHazard, GarbageIsBounded) {
  // Hazard pointers bound retired-but-unfreed nodes by the scan
  // threshold, independent of operation count — the property EBR cannot
  // give when a thread parks while pinned.
  hazard_tree t;
  for (int round = 0; round < 200; ++round) {
    for (long k = 0; k < 100; ++k) ASSERT_TRUE(t.insert(k));
    for (long k = 0; k < 100; ++k) ASSERT_TRUE(t.erase(k));
  }
  // 200 rounds retire ~40k nodes; pending must stay near the scan
  // threshold (2 * max_threads * slots + 16 ≈ 3.1k), not grow with work.
  EXPECT_LT(t.reclaimer_pending(), 4'000u);
}

TEST(NmHazard, ConcurrentChurnConservation) {
  hazard_tree t;
  constexpr unsigned kThreads = 4;
  std::atomic<long> net{0};
  spin_barrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (unsigned tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      pcg32 rng = pcg32::for_thread(11, tid);
      long local = 0;
      barrier.arrive_and_wait();
      for (int i = 0; i < 40'000; ++i) {
        const long k = rng.bounded(128);
        if (rng.bounded(2) == 0) {
          if (t.insert(k)) ++local;
        } else {
          if (t.erase(k)) --local;
        }
      }
      net.fetch_add(local);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.size_slow(), static_cast<std::size_t>(net.load()));
  EXPECT_EQ(t.validate(), "");
}

TEST(NmHazard, ReadersNeverSeeReclaimedNodes) {
  // Readers race deleters on a hot key range; every contains() must
  // return a sane answer and never touch freed memory (the latter shows
  // up as crashes/ASAN here, and as anchor misses below).
  hazard_tree t;
  constexpr long kAnchors = 64;
  for (long a = 1; a <= kAnchors; ++a) ASSERT_TRUE(t.insert(-a));
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};
  std::vector<std::thread> threads;
  for (unsigned w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      pcg32 rng = pcg32::for_thread(21, w);
      for (int i = 0; i < 50'000; ++i) {
        const long k = rng.bounded(64);
        if (rng.bounded(2) == 0) {
          t.insert(k);
        } else {
          t.erase(k);
        }
      }
      stop.store(true);
    });
  }
  for (unsigned r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      pcg32 rng = pcg32::for_thread(31, r);
      while (!stop.load(std::memory_order_acquire)) {
        if (!t.contains(-(1 + static_cast<long>(rng.bounded(kAnchors))))) {
          violations.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(t.validate(), "");
}

TEST(NmHazard, DuelingDeletesResolveOnce) {
  hazard_tree t;
  constexpr long kKeys = 1024;
  for (long k = 0; k < kKeys; ++k) ASSERT_TRUE(t.insert(k));
  std::atomic<long> wins{0};
  spin_barrier barrier(4);
  std::vector<std::thread> threads;
  for (unsigned tid = 0; tid < 4; ++tid) {
    threads.emplace_back([&, tid] {
      long local = 0;
      barrier.arrive_and_wait();
      if (tid % 2 == 0) {
        for (long k = 0; k < kKeys; ++k) local += t.erase(k) ? 1 : 0;
      } else {
        for (long k = kKeys - 1; k >= 0; --k) local += t.erase(k) ? 1 : 0;
      }
      wins.fetch_add(local);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wins.load(), kKeys);
  EXPECT_EQ(t.size_slow(), 0u);
  EXPECT_EQ(t.validate(), "");
}

TEST(NmHazard, DrainFreesEverythingAtDestruction) {
  // Construct/destroy with pending retirements repeatedly; leaks or
  // double frees show under ASAN, crashes anywhere.
  for (int round = 0; round < 20; ++round) {
    hazard_tree t;
    for (long k = 0; k < 500; ++k) t.insert(k);
    for (long k = 0; k < 500; k += 2) t.erase(k);
  }
  SUCCEED();
}

}  // namespace
}  // namespace lfbst
