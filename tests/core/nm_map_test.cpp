// Tests for nm_map — the NM-BST with leaf payloads: map semantics
// against std::map, the single-CAS insert_or_assign replace path, value
// immutability under concurrency, and the assign/delete race.
#include "core/nm_map.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/barrier.hpp"
#include "common/rng.hpp"
#include "reclaim/epoch.hpp"

namespace lfbst {
namespace {

TEST(NmMap, EmptyMapBehaviour) {
  nm_map<long, long> m;
  EXPECT_FALSE(m.get(1).has_value());
  EXPECT_FALSE(m.contains(1));
  EXPECT_FALSE(m.erase(1));
  EXPECT_EQ(m.size_slow(), 0u);
}

TEST(NmMap, InsertKeepsFirstValue) {
  nm_map<long, long> m;
  EXPECT_TRUE(m.insert(1, 100));
  EXPECT_FALSE(m.insert(1, 200));
  EXPECT_EQ(m.get(1), 100);
}

TEST(NmMap, InsertOrAssignReplaces) {
  nm_map<long, long> m;
  EXPECT_TRUE(m.insert_or_assign(1, 100));   // inserted
  EXPECT_FALSE(m.insert_or_assign(1, 200));  // assigned
  EXPECT_EQ(m.get(1), 200);
  EXPECT_FALSE(m.insert_or_assign(1, 300));
  EXPECT_EQ(m.get(1), 300);
  EXPECT_EQ(m.size_slow(), 1u);
  EXPECT_EQ(m.validate(), "");
}

TEST(NmMap, EraseRemovesValue) {
  nm_map<long, long> m;
  m.insert(1, 10);
  m.insert(2, 20);
  EXPECT_TRUE(m.erase(1));
  EXPECT_FALSE(m.get(1).has_value());
  EXPECT_EQ(m.get(2), 20);
}

TEST(NmMap, ContainsAndGetAgree) {
  nm_map<long, long> m;
  for (long k = 0; k < 100; k += 2) m.insert(k, k * 10);
  for (long k = 0; k < 100; ++k) {
    EXPECT_EQ(m.contains(k), m.get(k).has_value()) << k;
  }
}

TEST(NmMap, RandomSoupMatchesStdMap) {
  nm_map<long, long> m;
  std::map<long, long> oracle;
  pcg32 rng(777);
  for (int i = 0; i < 60'000; ++i) {
    const long k = rng.bounded(512);
    const long v = static_cast<long>(rng.next64());
    switch (rng.bounded(4)) {
      case 0:
        ASSERT_EQ(m.insert(k, v), oracle.emplace(k, v).second) << i;
        break;
      case 1: {
        const bool inserted_tree = m.insert_or_assign(k, v);
        const bool inserted_oracle =
            oracle.insert_or_assign(k, v).second;
        ASSERT_EQ(inserted_tree, inserted_oracle) << i;
        break;
      }
      case 2:
        ASSERT_EQ(m.erase(k), oracle.erase(k) > 0) << i;
        break;
      default: {
        const auto got = m.get(k);
        const auto it = oracle.find(k);
        ASSERT_EQ(got.has_value(), it != oracle.end()) << i;
        if (got) {
          ASSERT_EQ(*got, it->second) << i;
        }
      }
    }
  }
  EXPECT_EQ(m.size_slow(), oracle.size());
  EXPECT_EQ(m.validate(), "");
  // Full content comparison.
  std::vector<std::pair<long, long>> items;
  m.for_each_item_slow(
      [&items](long k, long v) { items.emplace_back(k, v); });
  ASSERT_EQ(items.size(), oracle.size());
  auto it = oracle.begin();
  for (const auto& [k, v] : items) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  }
}

TEST(NmMap, StringValuesWithEpochReclaimer) {
  nm_map<long, std::string, std::less<long>, reclaim::epoch> m;
  m.insert_or_assign(1, "one");
  m.insert_or_assign(2, "two");
  m.insert_or_assign(1, "uno");
  EXPECT_EQ(m.get(1), "uno");
  EXPECT_EQ(m.get(2), "two");
  EXPECT_TRUE(m.erase(1));
  EXPECT_FALSE(m.get(1).has_value());
  EXPECT_EQ(m.validate(), "");
}

TEST(NmMap, AssignChurnReclaimsOldLeaves) {
  nm_map<long, long, std::less<long>, reclaim::epoch> m;
  m.insert(7, 0);
  for (long i = 1; i <= 50'000; ++i) m.insert_or_assign(7, i);
  EXPECT_EQ(m.get(7), 50'000);
  EXPECT_EQ(m.size_slow(), 1u);
  // 50k replaced leaves must not all be pending (epoch flushes).
  EXPECT_LT(m.reclaimer_pending(), 5'000u);
}

TEST(NmMap, ConcurrentAssignersLastWriteWins) {
  // N threads assign distinct tagged values to one key; afterwards the
  // value must be one of the written values (no torn/mixed state) and
  // the map must be structurally sound.
  nm_map<long, long, std::less<long>, reclaim::epoch> m;
  m.insert(42, -1);
  constexpr unsigned kThreads = 4;
  constexpr long kWrites = 20'000;
  spin_barrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (unsigned tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      barrier.arrive_and_wait();
      for (long i = 0; i < kWrites; ++i) {
        m.insert_or_assign(42, static_cast<long>(tid) * kWrites + i);
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto v = m.get(42);
  ASSERT_TRUE(v.has_value());
  EXPECT_GE(*v, 0);
  EXPECT_LT(*v, static_cast<long>(kThreads) * kWrites);
  // The final value must be some thread's *last few* writes — precisely,
  // each thread's final write is i = kWrites-1; the last-write-wins
  // linearization means the value's within-thread index can be anything,
  // but the map must hold exactly one entry.
  EXPECT_EQ(m.size_slow(), 1u);
  EXPECT_EQ(m.validate(), "");
}

TEST(NmMap, AssignRacingEraseStaysLinearizable) {
  // One thread repeatedly erases+reinserts a key, another assigns to it.
  // Every get must observe either absence or one of the written values.
  nm_map<long, long, std::less<long>, reclaim::epoch> m;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> anomalies{0};
  std::thread eraser([&] {
    for (int i = 0; i < 30'000; ++i) {
      m.erase(5);
      m.insert(5, -1);
    }
    stop.store(true);
  });
  std::thread assigner([&] {
    long i = 1;
    while (!stop.load(std::memory_order_acquire)) {
      m.insert_or_assign(5, i++);
    }
  });
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const auto v = m.get(5);
      if (v && *v == 0) anomalies.fetch_add(1);  // 0 is never written
    }
  });
  eraser.join();
  assigner.join();
  reader.join();
  EXPECT_EQ(anomalies.load(), 0u);
  EXPECT_EQ(m.validate(), "");
}

TEST(NmMap, WorksWithCasOnlyTagging) {
  nm_map<long, long, std::less<long>, reclaim::leaky, stats::none,
         tag_policy::cas_only>
      m;
  m.insert_or_assign(1, 10);
  m.insert_or_assign(1, 11);
  EXPECT_EQ(m.get(1), 11);
  EXPECT_TRUE(m.erase(1));
  EXPECT_EQ(m.validate(), "");
}

TEST(NmMap, AssignCostIsOneCasOneAllocation) {
  // The replace path's static cost, in the spirit of Table 1.
  nm_map<long, long, std::less<long>, reclaim::leaky, stats::counting> m;
  m.insert(9, 0);
  const auto before = stats::counting::snapshot();
  ASSERT_FALSE(m.insert_or_assign(9, 1));
  const auto d = stats::counting::delta(before);
  EXPECT_EQ(d.cas_executed, 1u);
  EXPECT_EQ(d.bts_executed, 0u);
  EXPECT_EQ(d.objects_allocated, 1u);  // just the replacement leaf
}

}  // namespace
}  // namespace lfbst
