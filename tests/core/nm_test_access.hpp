// White-box hooks into nm_tree for deterministic tests of the marking
// and helping machinery. Declared a friend by the tree; everything here
// is test-only and assumes single-threaded use unless stated otherwise.
//
// The key capability: simulating a *stalled* delete. A real delete that
// crashed (or was preempted forever) right after its injection CAS
// leaves a flagged edge in the tree; lock-freedom demands that other
// operations complete it. These hooks plant exactly that state.
#pragma once

#include "core/natarajan_tree.hpp"

namespace lfbst {

struct nm_tree_test_access {
  /// Runs a seek and reports the four access-path nodes as opaque
  /// pointers plus their keys' client values where applicable.
  template <typename Tree>
  static auto seek(const Tree& t, const typename Tree::key_type& key) {
    typename Tree::seek_record sr;
    t.seek(key, sr);
    return sr;
  }

  template <typename Tree>
  static bool leaf_key_matches(const Tree& t,
                               const typename Tree::key_type& key) {
    auto sr = seek(t, key);
    return t.less_.equal(key, sr.leaf->key);
  }

  /// Plants the flag a delete's injection CAS would plant, then stops —
  /// the signature of a delete that stalled before cleanup. Returns
  /// false if the key is absent or the edge was already marked.
  template <typename Tree>
  static bool inject_stalled_delete(Tree& t,
                                    const typename Tree::key_type& key) {
    typename Tree::seek_record sr;
    t.seek(key, sr);
    if (!t.less_.equal(key, sr.leaf->key)) return false;
    auto& child_field = t.child_field_for(sr.parent, key);
    auto expected = Tree::ptr_t::clean(sr.leaf);
    return child_field.compare_exchange(
        expected, expected.with_marks(/*flagged=*/true, /*tagged=*/false));
  }

  /// Plants flag + sibling tag — a delete stalled between its BTS and
  /// its ancestor CAS. Returns false if the key is absent.
  template <typename Tree>
  static bool inject_stalled_delete_tagged(
      Tree& t, const typename Tree::key_type& key) {
    if (!inject_stalled_delete(t, key)) return false;
    typename Tree::seek_record sr;
    t.seek(key, sr);
    auto& sibling_field = t.less_(key, sr.parent->key) ? sr.parent->right
                                                       : sr.parent->left;
    sibling_field.bts_tag();
    return true;
  }

  /// Runs the retry-path seek (seek_retry) against a caller-held seek
  /// record — the exact call a failed CAS makes. Under
  /// restart::from_anchor this exercises anchor validation + local
  /// resume / root fallback; under restart::from_root it is a root seek.
  template <typename Tree>
  static void retry_seek(const Tree& t, const typename Tree::key_type& key,
                         typename Tree::seek_record& sr) {
    t.seek_retry(key, sr);
  }

  /// Directly probes anchor validation for a record. On success the
  /// record has been resumed from the anchor (sr is updated); on
  /// failure sr is untouched and the caller would root-seek.
  template <typename Tree>
  static bool anchor_holds(const Tree& t, const typename Tree::key_type& key,
                           typename Tree::seek_record& sr) {
    return t.try_seek_from_anchor(key, sr);
  }

  /// Runs one cleanup pass for `key` using a fresh seek record; returns
  /// whether this call's CAS performed the physical removal.
  template <typename Tree>
  static bool run_cleanup(Tree& t, const typename Tree::key_type& key) {
    typename Tree::seek_record sr;
    t.seek(key, sr);
    return t.cleanup(key, sr);
  }

  /// True iff two seek records name the same four access-path nodes.
  template <typename Record>
  static bool records_equal(const Record& a, const Record& b) {
    return a.ancestor == b.ancestor && a.successor == b.successor &&
           a.parent == b.parent && a.leaf == b.leaf;
  }

  /// True iff a held record's leaf carries `key`.
  template <typename Tree>
  static bool record_leaf_matches(const Tree& t,
                                  const typename Tree::key_type& key,
                                  const typename Tree::seek_record& sr) {
    return t.less_.equal(key, sr.leaf->key);
  }

  /// Whether a held record skipped a tagged region (successor ≠ parent).
  template <typename Record>
  static bool record_skipped_tagged_region(const Record& sr) {
    return sr.successor != sr.parent;
  }

  /// True iff the edge from the seek parent to the seek leaf for `key`
  /// is flagged / tagged right now.
  template <typename Tree>
  static std::pair<bool, bool> edge_marks(const Tree& t,
                                          const typename Tree::key_type& key) {
    typename Tree::seek_record sr;
    t.seek(key, sr);
    auto word = t.child_field_for(sr.parent, key).load();
    return {word.flagged(), word.tagged()};
  }

  /// Depth of the leaf on the access path for `key` (root ℝ = depth 0).
  template <typename Tree>
  static std::size_t access_path_depth(const Tree& t,
                                       const typename Tree::key_type& key) {
    std::size_t depth = 0;
    auto* n = t.r_;
    while (n->left.load(std::memory_order_relaxed).address() != nullptr) {
      n = t.less_(key, n->key)
              ? n->left.load(std::memory_order_relaxed).address()
              : n->right.load(std::memory_order_relaxed).address();
      ++depth;
    }
    return depth;
  }

  /// Whether the seek's (ancestor,successor) differ from
  /// (grandparent,parent) — i.e. the seek skipped a tagged region.
  template <typename Tree>
  static bool seek_skipped_tagged_region(const Tree& t,
                                         const typename Tree::key_type& key) {
    auto sr = seek(t, key);
    return sr.successor != sr.parent;
  }

  /// Count of reachable nodes (internal + leaves, sentinels included).
  template <typename Tree>
  static std::size_t reachable_node_count(const Tree& t) {
    std::size_t n = 0;
    std::vector<typename Tree::node*> stack{t.r_};
    while (!stack.empty()) {
      auto* x = stack.back();
      stack.pop_back();
      ++n;
      if (auto* l = x->left.load(std::memory_order_relaxed).address()) {
        stack.push_back(l);
      }
      if (auto* r = x->right.load(std::memory_order_relaxed).address()) {
        stack.push_back(r);
      }
    }
    return n;
  }
};

}  // namespace lfbst
