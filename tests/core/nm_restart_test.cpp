// Tests for the restart-policy axis (core/restart_policy.hpp): anchor
// validation, local resume, root fallback, and the counter attribution
// that distinguishes them.
//
// The deterministic scenarios all use the degenerate right-spine shape
// that inserting {1, 2, 3} in ascending order produces:
//
//         𝕊 ── A(∞₀) ── B(2) ── C(3)
//                        │ \      │ \
//                  leaf(1) ..  leaf(2) leaf(3)
//
// A seek for 3 records (ancestor=B, successor=C, parent=C, leaf=leaf 3).
// Erasing 2 excises C (B.right swings to leaf 3) — the anchor edge
// changes address. A stalled delete of 1 tags B.right — the anchor edge
// becomes marked. Both must force the root fallback; an undisturbed
// anchor must not.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/natarajan_tree.hpp"
#include "core/restart_policy.hpp"
#include "obs/metrics.hpp"
#include "reclaim/hazard_reclaimer.hpp"
#include "nm_test_access.hpp"

namespace lfbst {
namespace {

using access = nm_tree_test_access;

using counting_anchor =
    nm_tree<int, std::less<int>, reclaim::leaky, stats::counting,
            tag_policy::bts, void, atomics::native, restart::from_anchor>;
using counting_root =
    nm_tree<int, std::less<int>, reclaim::leaky, stats::counting,
            tag_policy::bts, void, atomics::native, restart::from_root>;
using hazard_anchor =
    nm_tree<int, std::less<int>, reclaim::hazard, stats::none,
            tag_policy::bts, void, atomics::native, restart::from_anchor>;
using hazard_root =
    nm_tree<int, std::less<int>, reclaim::hazard, stats::none,
            tag_policy::bts, void, atomics::native, restart::from_root>;
using recording_anchor =
    nm_tree<int, std::less<int>, reclaim::leaky, obs::recording,
            tag_policy::bts, void, atomics::native, restart::from_anchor>;
using recording_root =
    nm_tree<int, std::less<int>, reclaim::leaky, obs::recording,
            tag_policy::bts, void, atomics::native, restart::from_root>;

template <typename Tree>
void build_spine(Tree& t) {
  ASSERT_TRUE(t.insert(1));
  ASSERT_TRUE(t.insert(2));
  ASSERT_TRUE(t.insert(3));
}

// --- local resume ----------------------------------------------------

TEST(NmRestart, RetrySeekResumesLocallyWhenAnchorIntact) {
  counting_anchor t;
  build_spine(t);
  auto sr = access::seek(t, 3);
  stats::counting::reset();

  access::retry_seek(t, 3, sr);

  const auto fresh = access::seek(t, 3);
  EXPECT_TRUE(access::records_equal(sr, fresh));
  const auto rec = stats::counting::local();
  EXPECT_EQ(rec.seek_resumes_local, 1u);
  EXPECT_EQ(rec.seek_anchor_fallbacks, 0u);
}

TEST(NmRestart, AnchorHoldsOnUndisturbedRecord) {
  counting_anchor t;
  build_spine(t);
  auto sr = access::seek(t, 3);
  EXPECT_TRUE(access::anchor_holds(t, 3, sr));
  EXPECT_TRUE(access::record_leaf_matches(t, 3, sr));
}

// --- root fallback: anchor edge swung to a different address ---------

TEST(NmRestart, RetrySeekFallsBackWhenAnchorExcised) {
  counting_anchor t;
  build_spine(t);
  auto sr = access::seek(t, 3);
  // Erasing 2 excises internal node C: the recorded anchor edge
  // (B.right) now addresses leaf 3 directly, not the successor.
  ASSERT_TRUE(t.erase(2));
  stats::counting::reset();

  access::retry_seek(t, 3, sr);

  EXPECT_TRUE(access::record_leaf_matches(t, 3, sr));
  const auto rec = stats::counting::local();
  EXPECT_EQ(rec.seek_resumes_local, 0u);
  EXPECT_EQ(rec.seek_anchor_fallbacks, 1u);
}

TEST(NmRestart, AnchorValidationRejectsExcisedEdge) {
  counting_anchor t;
  build_spine(t);
  auto sr = access::seek(t, 3);
  ASSERT_TRUE(t.erase(2));
  EXPECT_FALSE(access::anchor_holds(t, 3, sr));
}

// --- root fallback: anchor edge marked by a concurrent delete --------

TEST(NmRestart, RetrySeekFallsBackWhenAnchorMarked) {
  counting_anchor t;
  build_spine(t);
  auto sr = access::seek(t, 3);
  // A delete of 1 stalled between its BTS and its ancestor CAS leaves
  // B.left flagged and B.right — the recorded anchor edge for key 3 —
  // tagged. A marked edge is frozen and proves nothing about
  // reachability, so validation must reject it.
  ASSERT_TRUE(access::inject_stalled_delete_tagged(t, 1));
  stats::counting::reset();

  access::retry_seek(t, 3, sr);

  EXPECT_TRUE(access::record_leaf_matches(t, 3, sr));
  // The fallback root seek walked through the tagged anchor edge, so
  // its record skips that region: successor ≠ parent.
  EXPECT_TRUE(access::record_skipped_tagged_region(sr));
  const auto rec = stats::counting::local();
  EXPECT_EQ(rec.seek_resumes_local, 0u);
  EXPECT_EQ(rec.seek_anchor_fallbacks, 1u);
}

// --- from_root: the retry path is a root seek by policy --------------

TEST(NmRestart, FromRootPolicyNeverTouchesAnchorCounters) {
  counting_root t;
  build_spine(t);
  auto sr = access::seek(t, 3);
  ASSERT_TRUE(t.erase(2));
  stats::counting::reset();

  access::retry_seek(t, 3, sr);

  EXPECT_TRUE(access::record_leaf_matches(t, 3, sr));
  const auto rec = stats::counting::local();
  EXPECT_EQ(rec.seek_resumes_local, 0u);
  EXPECT_EQ(rec.seek_anchor_fallbacks, 0u);
}

TEST(NmRestart, PoliciesAgreeOnSequentialHistory) {
  counting_anchor a;
  counting_root r;
  for (int k = 0; k < 64; k += 2) {
    EXPECT_EQ(a.insert(k), r.insert(k));
  }
  for (int k = 0; k < 64; k += 3) {
    EXPECT_EQ(a.erase(k), r.erase(k));
  }
  for (int k = 0; k < 64; ++k) {
    EXPECT_EQ(a.contains(k), r.contains(k)) << k;
  }
  EXPECT_EQ(a.validate(), "");
  EXPECT_EQ(r.validate(), "");
}

// --- hazard reclamation: the protected anchored descent --------------

TEST(NmRestart, HazardRetrySeekResumesLocally) {
  hazard_anchor t;
  build_spine(t);
  auto sr = access::seek(t, 3);
  access::retry_seek(t, 3, sr);
  const auto fresh = access::seek(t, 3);
  EXPECT_TRUE(access::records_equal(sr, fresh));
}

TEST(NmRestart, HazardRetrySeekFallsBackAfterExcision) {
  hazard_anchor t;
  build_spine(t);
  auto sr = access::seek(t, 3);
  // The excised successor stays protected by this thread's own
  // hp_successor announcement, so the validation load is safe even
  // though the node has been retired.
  ASSERT_TRUE(t.erase(2));
  access::retry_seek(t, 3, sr);
  EXPECT_TRUE(access::record_leaf_matches(t, 3, sr));
}

// --- contended runs: the counter algebra must hold exactly -----------
//
// Every attributed restart (injection_fail or cleanup_mode) is followed
// by exactly one seek_retry, which under from_anchor resolves to either
// a local resume or a root fallback — and to neither under from_root.

template <typename Tree>
void churn(Tree& t, unsigned threads, int keys, int iters) {
  std::atomic<bool> go{false};
  std::vector<std::thread> ts;
  for (unsigned i = 0; i < threads; ++i) {
    ts.emplace_back([&t, &go, keys, iters, i] {
      // Independent random streams over the same tiny key range: all
      // threads hammer the same few leaves, so injection CASes collide
      // and cleanups contend.
      pcg32 rng(0x2545f491u + i);
      while (!go.load(std::memory_order_acquire)) {}
      for (int n = 0; n < iters; ++n) {
        const int k = static_cast<int>(rng.bounded(static_cast<std::uint32_t>(keys)));
        if (rng.bounded(2) != 0) {
          t.insert(k);
        } else {
          t.erase(k);
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& th : ts) th.join();
}

TEST(NmRestart, ContendedCounterAlgebraFromAnchor) {
  recording_anchor t;
  churn(t, 4, 4, 20000);
  EXPECT_EQ(t.validate(), "");
  const auto s = t.stats().counters().snapshot();
  EXPECT_EQ(s[obs::counter::seek_restarts],
            s[obs::counter::restarts_injection_fail] +
                s[obs::counter::restarts_cleanup_mode]);
  EXPECT_EQ(s[obs::counter::seek_restarts],
            s[obs::counter::seek_resumes_local] +
                s[obs::counter::seek_anchor_fallbacks]);
}

TEST(NmRestart, ContendedCounterAlgebraFromRoot) {
  recording_root t;
  churn(t, 4, 4, 20000);
  EXPECT_EQ(t.validate(), "");
  const auto s = t.stats().counters().snapshot();
  EXPECT_EQ(s[obs::counter::seek_restarts],
            s[obs::counter::restarts_injection_fail] +
                s[obs::counter::restarts_cleanup_mode]);
  EXPECT_EQ(s[obs::counter::seek_resumes_local], 0u);
  EXPECT_EQ(s[obs::counter::seek_anchor_fallbacks], 0u);
}

TEST(NmRestart, ContendedHazardSmokeBothPolicies) {
  {
    hazard_anchor t;
    churn(t, 4, 8, 10000);
    EXPECT_EQ(t.validate(), "");
  }
  {
    hazard_root t;
    churn(t, 4, 8, 10000);
    EXPECT_EQ(t.validate(), "");
  }
}

}  // namespace
}  // namespace lfbst
