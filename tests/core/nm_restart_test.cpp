// Tests for the restart-policy axis (core/restart_policy.hpp): anchor
// validation, local resume, root fallback, and the counter attribution
// that distinguishes them.
//
// The deterministic scenarios all use the degenerate right-spine shape
// that inserting {1, 2, 3} in ascending order produces:
//
//         𝕊 ── A(∞₀) ── B(2) ── C(3)
//                        │ \      │ \
//                  leaf(1) ..  leaf(2) leaf(3)
//
// A seek for 3 records (ancestor=B, successor=C, parent=C, leaf=leaf 3).
// Erasing 2 excises C (B.right swings to leaf 3) — the anchor edge
// changes address. A stalled delete of 1 tags B.right — the anchor edge
// becomes marked. Both must force the root fallback; an undisturbed
// anchor must not.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/natarajan_tree.hpp"
#include "core/restart_policy.hpp"
#include "obs/metrics.hpp"
#include "reclaim/hazard_reclaimer.hpp"
#include "nm_test_access.hpp"

namespace lfbst {
namespace {

using access = nm_tree_test_access;

using counting_anchor =
    nm_tree<int, std::less<int>, reclaim::leaky, stats::counting,
            tag_policy::bts, void, atomics::native, restart::from_anchor>;
using counting_root =
    nm_tree<int, std::less<int>, reclaim::leaky, stats::counting,
            tag_policy::bts, void, atomics::native, restart::from_root>;
using hazard_anchor =
    nm_tree<int, std::less<int>, reclaim::hazard, stats::none,
            tag_policy::bts, void, atomics::native, restart::from_anchor>;
using hazard_root =
    nm_tree<int, std::less<int>, reclaim::hazard, stats::none,
            tag_policy::bts, void, atomics::native, restart::from_root>;
using recording_anchor =
    nm_tree<int, std::less<int>, reclaim::leaky, obs::recording,
            tag_policy::bts, void, atomics::native, restart::from_anchor>;
using recording_root =
    nm_tree<int, std::less<int>, reclaim::leaky, obs::recording,
            tag_policy::bts, void, atomics::native, restart::from_root>;

template <typename Tree>
void build_spine(Tree& t) {
  ASSERT_TRUE(t.insert(1));
  ASSERT_TRUE(t.insert(2));
  ASSERT_TRUE(t.insert(3));
}

// --- local resume ----------------------------------------------------

TEST(NmRestart, RetrySeekResumesLocallyWhenAnchorIntact) {
  counting_anchor t;
  build_spine(t);
  auto sr = access::seek(t, 3);
  stats::counting::reset();

  access::retry_seek(t, 3, sr);

  const auto fresh = access::seek(t, 3);
  EXPECT_TRUE(access::records_equal(sr, fresh));
  const auto rec = stats::counting::local();
  EXPECT_EQ(rec.seek_resumes_local, 1u);
  EXPECT_EQ(rec.seek_anchor_fallbacks, 0u);
}

TEST(NmRestart, AnchorHoldsOnUndisturbedRecord) {
  counting_anchor t;
  build_spine(t);
  auto sr = access::seek(t, 3);
  EXPECT_TRUE(access::anchor_holds(t, 3, sr));
  EXPECT_TRUE(access::record_leaf_matches(t, 3, sr));
}

// --- root fallback: anchor edge swung to a different address ---------

TEST(NmRestart, RetrySeekFallsBackWhenAnchorExcised) {
  counting_anchor t;
  build_spine(t);
  auto sr = access::seek(t, 3);
  // Erasing 2 excises internal node C: the recorded anchor edge
  // (B.right) now addresses leaf 3 directly, not the successor.
  ASSERT_TRUE(t.erase(2));
  stats::counting::reset();

  access::retry_seek(t, 3, sr);

  EXPECT_TRUE(access::record_leaf_matches(t, 3, sr));
  const auto rec = stats::counting::local();
  EXPECT_EQ(rec.seek_resumes_local, 0u);
  EXPECT_EQ(rec.seek_anchor_fallbacks, 1u);
}

TEST(NmRestart, AnchorValidationRejectsExcisedEdge) {
  counting_anchor t;
  build_spine(t);
  auto sr = access::seek(t, 3);
  ASSERT_TRUE(t.erase(2));
  EXPECT_FALSE(access::anchor_holds(t, 3, sr));
}

// --- root fallback: anchor edge marked by a concurrent delete --------

TEST(NmRestart, RetrySeekFallsBackWhenAnchorMarked) {
  counting_anchor t;
  build_spine(t);
  auto sr = access::seek(t, 3);
  // A delete of 1 stalled between its BTS and its ancestor CAS leaves
  // B.left flagged and B.right — the recorded anchor edge for key 3 —
  // tagged. A marked edge is frozen and proves nothing about
  // reachability, so validation must reject it.
  ASSERT_TRUE(access::inject_stalled_delete_tagged(t, 1));
  stats::counting::reset();

  access::retry_seek(t, 3, sr);

  EXPECT_TRUE(access::record_leaf_matches(t, 3, sr));
  // The fallback root seek walked through the tagged anchor edge, so
  // its record skips that region: successor ≠ parent.
  EXPECT_TRUE(access::record_skipped_tagged_region(sr));
  const auto rec = stats::counting::local();
  EXPECT_EQ(rec.seek_resumes_local, 0u);
  EXPECT_EQ(rec.seek_anchor_fallbacks, 1u);
}

// --- from_root: the retry path is a root seek by policy --------------

TEST(NmRestart, FromRootPolicyNeverTouchesAnchorCounters) {
  counting_root t;
  build_spine(t);
  auto sr = access::seek(t, 3);
  ASSERT_TRUE(t.erase(2));
  stats::counting::reset();

  access::retry_seek(t, 3, sr);

  EXPECT_TRUE(access::record_leaf_matches(t, 3, sr));
  const auto rec = stats::counting::local();
  EXPECT_EQ(rec.seek_resumes_local, 0u);
  EXPECT_EQ(rec.seek_anchor_fallbacks, 0u);
}

TEST(NmRestart, PoliciesAgreeOnSequentialHistory) {
  counting_anchor a;
  counting_root r;
  for (int k = 0; k < 64; k += 2) {
    EXPECT_EQ(a.insert(k), r.insert(k));
  }
  for (int k = 0; k < 64; k += 3) {
    EXPECT_EQ(a.erase(k), r.erase(k));
  }
  for (int k = 0; k < 64; ++k) {
    EXPECT_EQ(a.contains(k), r.contains(k)) << k;
  }
  EXPECT_EQ(a.validate(), "");
  EXPECT_EQ(r.validate(), "");
}

// --- hazard reclamation: the protected anchored descent --------------

TEST(NmRestart, HazardRetrySeekResumesLocally) {
  hazard_anchor t;
  build_spine(t);
  auto sr = access::seek(t, 3);
  access::retry_seek(t, 3, sr);
  const auto fresh = access::seek(t, 3);
  EXPECT_TRUE(access::records_equal(sr, fresh));
}

TEST(NmRestart, HazardRetrySeekFallsBackAfterExcision) {
  hazard_anchor t;
  build_spine(t);
  auto sr = access::seek(t, 3);
  // The excised successor stays protected by this thread's own
  // hp_successor announcement, so the validation load is safe even
  // though the node has been retired.
  ASSERT_TRUE(t.erase(2));
  access::retry_seek(t, 3, sr);
  EXPECT_TRUE(access::record_leaf_matches(t, 3, sr));
}

// --- contended runs: the counter algebra must hold exactly -----------
//
// Every attributed restart (injection_fail or cleanup_mode) is followed
// by exactly one seek_retry, which under from_anchor resolves to either
// a local resume or a root fallback — and to neither under from_root.

template <typename Tree>
void churn(Tree& t, unsigned threads, int keys, int iters) {
  std::atomic<bool> go{false};
  std::vector<std::thread> ts;
  for (unsigned i = 0; i < threads; ++i) {
    ts.emplace_back([&t, &go, keys, iters, i] {
      // Independent random streams over the same tiny key range: all
      // threads hammer the same few leaves, so injection CASes collide
      // and cleanups contend.
      pcg32 rng(0x2545f491u + i);
      while (!go.load(std::memory_order_acquire)) {}
      for (int n = 0; n < iters; ++n) {
        const int k = static_cast<int>(rng.bounded(static_cast<std::uint32_t>(keys)));
        if (rng.bounded(2) != 0) {
          t.insert(k);
        } else {
          t.erase(k);
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& th : ts) th.join();
}

TEST(NmRestart, ContendedCounterAlgebraFromAnchor) {
  recording_anchor t;
  churn(t, 4, 4, 20000);
  EXPECT_EQ(t.validate(), "");
  const auto s = t.stats().counters().snapshot();
  EXPECT_EQ(s[obs::counter::seek_restarts],
            s[obs::counter::restarts_injection_fail] +
                s[obs::counter::restarts_cleanup_mode]);
  EXPECT_EQ(s[obs::counter::seek_restarts],
            s[obs::counter::seek_resumes_local] +
                s[obs::counter::seek_anchor_fallbacks]);
}

TEST(NmRestart, ContendedCounterAlgebraFromRoot) {
  recording_root t;
  churn(t, 4, 4, 20000);
  EXPECT_EQ(t.validate(), "");
  const auto s = t.stats().counters().snapshot();
  EXPECT_EQ(s[obs::counter::seek_restarts],
            s[obs::counter::restarts_injection_fail] +
                s[obs::counter::restarts_cleanup_mode]);
  EXPECT_EQ(s[obs::counter::seek_resumes_local], 0u);
  EXPECT_EQ(s[obs::counter::seek_anchor_fallbacks], 0u);
}

// --- seek-depth attribution ------------------------------------------
//
// A from_anchor resume walks only the tail below the anchor, but the
// seek_depth histogram must report the *root-relative* path length —
// anchor base + tail — or attack-stream telemetry (and the perf gate
// built on it) would under-count exactly the deep seeks it exists to
// catch. seek_record::anchor_depth carries the base; these tests pin
// that it is seeded and summed, using a deep spine where the two
// answers differ by ~the whole tree height.

TEST(NmRestart, LocalResumeRecordsRootRelativeDepth) {
  recording_anchor t;
  constexpr int kSpine = 48;  // < 64 keeps histogram buckets exact
  for (int k = 1; k <= kSpine; ++k) ASSERT_TRUE(t.insert(k));
  auto sr = access::seek(t, kSpine);

  // Reference: the depth a fresh root seek of the same key records.
  const auto before = t.stats().seek_depth_histogram();
  (void)access::seek(t, kSpine);
  const auto mid = t.stats().seek_depth_histogram();
  const std::uint64_t root_depth = mid.delta_since(before).max();
  ASSERT_GE(root_depth, static_cast<std::uint64_t>(kSpine) - 2);

  // The resume must attribute the same depth, not just the short tail
  // below the anchor (the anchor sits a couple of edges above the
  // leaf, so a tail-only count would be ~2).
  const auto counters_before = t.stats().counters().snapshot();
  access::retry_seek(t, kSpine, sr);
  const auto counters_after = t.stats().counters().snapshot();
  ASSERT_EQ(counters_after[obs::counter::seek_resumes_local],
            counters_before[obs::counter::seek_resumes_local] + 1);

  const auto resumed = t.stats().seek_depth_histogram().delta_since(mid);
  EXPECT_EQ(resumed.count(), 1u);
  EXPECT_GE(resumed.max() + 2, root_depth);
}

TEST(NmRestart, RootFallbackRecordsFullDepth) {
  recording_anchor t;
  constexpr int kSpine = 48;
  for (int k = 1; k <= kSpine; ++k) ASSERT_TRUE(t.insert(k));
  auto sr = access::seek(t, kSpine);
  // Excise the anchor edge so the retry must fall back to a root seek;
  // the fallback traverses from ℝ and records accordingly.
  ASSERT_TRUE(t.erase(kSpine - 1));

  const auto before = t.stats().seek_depth_histogram();
  access::retry_seek(t, kSpine, sr);
  const auto counters = t.stats().counters().snapshot();
  EXPECT_GE(counters[obs::counter::seek_anchor_fallbacks], 1u);

  const auto fell_back = t.stats().seek_depth_histogram().delta_since(before);
  EXPECT_EQ(fell_back.count(), 1u);
  EXPECT_GE(fell_back.max() + 4, static_cast<std::uint64_t>(kSpine));
}

TEST(NmRestart, FromRootRetryRecordsFullDepth) {
  recording_root t;
  constexpr int kSpine = 48;
  for (int k = 1; k <= kSpine; ++k) ASSERT_TRUE(t.insert(k));
  auto sr = access::seek(t, kSpine);

  const auto before = t.stats().seek_depth_histogram();
  access::retry_seek(t, kSpine, sr);
  const auto retried = t.stats().seek_depth_histogram().delta_since(before);
  EXPECT_EQ(retried.count(), 1u);
  EXPECT_GE(retried.max() + 2, static_cast<std::uint64_t>(kSpine));
}

TEST(NmRestart, ContendedHazardSmokeBothPolicies) {
  {
    hazard_anchor t;
    churn(t, 4, 8, 10000);
    EXPECT_EQ(t.validate(), "");
  }
  {
    hazard_root t;
    churn(t, 4, 8, 10000);
    EXPECT_EQ(t.validate(), "");
  }
}

}  // namespace
}  // namespace lfbst
