// Unit tests for the instrumentation policies behind Table 1.
#include "core/stats.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace lfbst {
namespace {

TEST(StatsCounting, HooksAccumulate) {
  stats::counting::reset();
  stats::counting::on_alloc();
  stats::counting::on_alloc(3);
  stats::counting::on_cas();
  stats::counting::on_cas();
  stats::counting::on_bts();
  stats::counting::on_seek_restart();
  stats::counting::on_help();
  const stats::op_record& r = stats::counting::local();
  EXPECT_EQ(r.objects_allocated, 4u);
  EXPECT_EQ(r.cas_executed, 2u);
  EXPECT_EQ(r.bts_executed, 1u);
  EXPECT_EQ(r.seek_restarts, 1u);
  EXPECT_EQ(r.helps, 1u);
  EXPECT_EQ(r.atomics(), 3u);
}

TEST(StatsCounting, ResetClears) {
  stats::counting::on_cas();
  stats::counting::reset();
  EXPECT_EQ(stats::counting::local().cas_executed, 0u);
}

TEST(StatsCounting, SnapshotDeltaIsolatesOneOperation) {
  stats::counting::reset();
  stats::counting::on_cas();
  const auto before = stats::counting::snapshot();
  stats::counting::on_cas();
  stats::counting::on_bts();
  stats::counting::on_alloc(2);
  const auto d = stats::counting::delta(before);
  EXPECT_EQ(d.cas_executed, 1u);
  EXPECT_EQ(d.bts_executed, 1u);
  EXPECT_EQ(d.objects_allocated, 2u);
}

TEST(StatsCounting, CountersAreThreadLocal) {
  stats::counting::reset();
  stats::counting::on_cas();
  std::thread other([] {
    stats::counting::reset();
    EXPECT_EQ(stats::counting::local().cas_executed, 0u);
    stats::counting::on_cas();
    stats::counting::on_cas();
    EXPECT_EQ(stats::counting::local().cas_executed, 2u);
  });
  other.join();
  EXPECT_EQ(stats::counting::local().cas_executed, 1u);
}

TEST(StatsNone, IsCompletelyInert) {
  // Compile-time property mostly; the hooks exist and do nothing.
  stats::none::on_alloc();
  stats::none::on_cas();
  stats::none::on_bts();
  stats::none::on_seek_restart();
  stats::none::on_help();
  EXPECT_FALSE(stats::none::enabled);
  EXPECT_TRUE(stats::counting::enabled);
}

}  // namespace
}  // namespace lfbst
