// Unit tests for the instrumentation policies behind Table 1.
#include "core/stats.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace lfbst {
namespace {

TEST(StatsCounting, HooksAccumulate) {
  stats::counting::reset();
  stats::counting::on_alloc();
  stats::counting::on_alloc(3);
  stats::counting::on_cas();
  stats::counting::on_cas();
  stats::counting::on_bts();
  stats::counting::on_seek_restart();
  stats::counting::on_help();
  const stats::op_record& r = stats::counting::local();
  EXPECT_EQ(r.objects_allocated, 4u);
  EXPECT_EQ(r.cas_executed, 2u);
  EXPECT_EQ(r.bts_executed, 1u);
  EXPECT_EQ(r.seek_restarts, 1u);
  EXPECT_EQ(r.helps, 1u);
  EXPECT_EQ(r.atomics(), 3u);
}

TEST(StatsCounting, ResetClears) {
  stats::counting::on_cas();
  stats::counting::reset();
  EXPECT_EQ(stats::counting::local().cas_executed, 0u);
}

TEST(StatsCounting, SnapshotDeltaIsolatesOneOperation) {
  stats::counting::reset();
  stats::counting::on_cas();
  const auto before = stats::counting::snapshot();
  stats::counting::on_cas();
  stats::counting::on_bts();
  stats::counting::on_alloc(2);
  const auto d = stats::counting::delta(before);
  EXPECT_EQ(d.cas_executed, 1u);
  EXPECT_EQ(d.bts_executed, 1u);
  EXPECT_EQ(d.objects_allocated, 2u);
}

TEST(StatsCounting, CountersAreThreadLocal) {
  stats::counting::reset();
  stats::counting::on_cas();
  std::thread other([] {
    stats::counting::reset();
    EXPECT_EQ(stats::counting::local().cas_executed, 0u);
    stats::counting::on_cas();
    stats::counting::on_cas();
    EXPECT_EQ(stats::counting::local().cas_executed, 2u);
  });
  other.join();
  EXPECT_EQ(stats::counting::local().cas_executed, 1u);
}

TEST(StatsCounting, CasFailureIsASubsetOfCas) {
  stats::counting::reset();
  stats::counting::on_cas();
  stats::counting::on_cas();
  stats::counting::on_cas_fail();
  const stats::op_record& r = stats::counting::local();
  EXPECT_EQ(r.cas_executed, 2u);
  EXPECT_EQ(r.cas_failed, 1u);
  // Failed CASes don't change the atomics() tally: the attempt was
  // already counted by on_cas (Table 1 counts attempts).
  EXPECT_EQ(r.atomics(), 2u);
}

TEST(StatsCounting, HelpAttributionSplitsByEdgeKind) {
  stats::counting::reset();
  stats::counting::on_help(stats::help_kind::flagged_edge);
  stats::counting::on_help(stats::help_kind::flagged_edge);
  stats::counting::on_help(stats::help_kind::tagged_edge);
  stats::counting::on_help(stats::help_kind::unattributed);
  stats::counting::on_help();  // bare overload: also unattributed
  const stats::op_record& r = stats::counting::local();
  EXPECT_EQ(r.helps, 5u);
  EXPECT_EQ(r.helps_flagged, 2u);
  EXPECT_EQ(r.helps_tagged, 1u);
  // Unattributed helps count toward the total only.
  EXPECT_EQ(r.helps - r.helps_flagged - r.helps_tagged, 2u);
}

TEST(StatsCounting, StructuralHooksDoNotPerturbTable1Counts) {
  stats::counting::reset();
  stats::counting::on_cleanup();
  stats::counting::on_excision(3);
  stats::counting::on_op_begin(stats::op_kind::insert);
  stats::counting::on_op_end(stats::op_kind::insert, true);
  stats::counting::on_seek(12);
  const stats::op_record& r = stats::counting::local();
  EXPECT_EQ(r.atomics(), 0u);
  EXPECT_EQ(r.objects_allocated, 0u);
  EXPECT_EQ(r.helps, 0u);
}

TEST(StatsNone, IsCompletelyInert) {
  // Compile-time property mostly; the hooks exist and do nothing.
  stats::none::on_alloc();
  stats::none::on_cas();
  stats::none::on_cas_fail();
  stats::none::on_bts();
  stats::none::on_seek_restart();
  stats::none::on_help();
  stats::none::on_help(stats::help_kind::tagged_edge);
  stats::none::on_cleanup();
  stats::none::on_excision(2);
  stats::none::on_op_begin(stats::op_kind::search);
  stats::none::on_op_end(stats::op_kind::search, false);
  stats::none::on_seek(1);
  EXPECT_FALSE(stats::none::enabled);
  EXPECT_TRUE(stats::counting::enabled);
}

}  // namespace
}  // namespace lfbst
