// Unit tests for sentinel-extended keys: the ∞₀ < ∞₁ < ∞₂ order the
// NM-BST's anchoring depends on (paper Fig. 3), plus the -∞ rank used by
// internal-tree baselines and the comparator's client-key fallback.
#include "core/sentinel_key.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <string>

namespace lfbst {
namespace {

using skey = sentinel_key<long>;
using sless = sentinel_less<long, std::less<long>>;

TEST(SentinelKey, ClientKeysCompareByValue) {
  sless less;
  EXPECT_TRUE(less(skey(1), skey(2)));
  EXPECT_FALSE(less(skey(2), skey(1)));
  EXPECT_FALSE(less(skey(5), skey(5)));
}

TEST(SentinelKey, InfinitiesAreOrdered) {
  sless less;
  EXPECT_TRUE(less(skey::inf0(), skey::inf1()));
  EXPECT_TRUE(less(skey::inf1(), skey::inf2()));
  EXPECT_TRUE(less(skey::inf0(), skey::inf2()));
  EXPECT_FALSE(less(skey::inf2(), skey::inf0()));
}

TEST(SentinelKey, InfinitiesAboveAllClientKeys) {
  sless less;
  for (long k : {-1000000L, -1L, 0L, 1L, 1000000L}) {
    EXPECT_TRUE(less(skey(k), skey::inf0()));
    EXPECT_TRUE(less(skey(k), skey::inf1()));
    EXPECT_TRUE(less(skey(k), skey::inf2()));
    EXPECT_FALSE(less(skey::inf0(), skey(k)));
  }
}

TEST(SentinelKey, NegInfBelowAllClientKeys) {
  sless less;
  for (long k : {-1000000L, 0L, 1000000L}) {
    EXPECT_TRUE(less(skey::neg_inf(), skey(k)));
    EXPECT_FALSE(less(skey(k), skey::neg_inf()));
  }
  EXPECT_TRUE(less(skey::neg_inf(), skey::inf0()));
}

TEST(SentinelKey, EqualSentinelsAreNotLess) {
  sless less;
  EXPECT_FALSE(less(skey::inf1(), skey::inf1()));
  EXPECT_FALSE(less(skey::neg_inf(), skey::neg_inf()));
}

TEST(SentinelKey, RawKeyVsStoredKeyOverload) {
  sless less;
  EXPECT_TRUE(less(3L, skey(4)));
  EXPECT_FALSE(less(4L, skey(4)));
  EXPECT_FALSE(less(5L, skey(4)));
  EXPECT_TRUE(less(5L, skey::inf0()));   // every client key below +inf
  EXPECT_FALSE(less(5L, skey::neg_inf()));  // ... and above -inf
}

TEST(SentinelKey, EqualityHelper) {
  sless less;
  EXPECT_TRUE(less.equal(7L, skey(7)));
  EXPECT_FALSE(less.equal(7L, skey(8)));
  EXPECT_FALSE(less.equal(7L, skey::inf0()));
  EXPECT_FALSE(less.equal(7L, skey::inf2()));
}

TEST(SentinelKey, IsSentinelFlag) {
  EXPECT_FALSE(skey(0).is_sentinel());
  EXPECT_TRUE(skey::inf0().is_sentinel());
  EXPECT_TRUE(skey::inf1().is_sentinel());
  EXPECT_TRUE(skey::inf2().is_sentinel());
  EXPECT_TRUE(skey::neg_inf().is_sentinel());
}

TEST(SentinelKey, WorksWithNonTrivialKeyTypes) {
  using strkey = sentinel_key<std::string>;
  sentinel_less<std::string, std::less<std::string>> less;
  EXPECT_TRUE(less(strkey("abc"), strkey("abd")));
  EXPECT_TRUE(less(strkey("zzz"), strkey::inf0()));
  EXPECT_TRUE(less.equal(std::string("x"), strkey("x")));
}

TEST(SentinelKey, CustomComparatorIsRespected) {
  // greater<long> flips the client order but must leave sentinel
  // stratification intact.
  sentinel_less<long, std::greater<long>> less;
  EXPECT_TRUE(less(sentinel_key<long>(9), sentinel_key<long>(3)));
  EXPECT_FALSE(less(sentinel_key<long>(3), sentinel_key<long>(9)));
  EXPECT_TRUE(less(sentinel_key<long>(-100), sentinel_key<long>::inf0()));
}

}  // namespace
}  // namespace lfbst
