// Schedule-exploration scenarios pinning the paper's known-hard races
// on the NM-BST (and the EFRB baseline) deterministically.
//
// Each scenario is explored three ways: bounded exhaustive DFS (every
// interleaving up to a budget — distinct by construction), a PCT sweep
// (priority preemption at random depths, strong on the depth-2
// flag-CAS/BTS windows), and a seeded random walk. Every terminal state
// is checked for (a) linearizability against the sequential set
// semantics via the Wing–Gong checker, with the terminal membership
// folded into the history, and (b) structural validity. Any failure
// message carries the seed and the full schedule trace; rerunning with
// dsched::replay::from_string(trace) reproduces the interleaving
// exactly (see docs/DSCHED.md).
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "baselines/efrb_tree.hpp"
#include "core/natarajan_tree.hpp"
#include "core/restart_policy.hpp"
#include "dsched/atomics.hpp"
#include "dsched/harness.hpp"
#include "obs/metrics.hpp"

namespace lfbst {
namespace {

// The trees under schedule control. Leaky reclamation keeps the step
// count per operation at the paper's protocol steps only (reclamation
// atomics are not interposed and would only blur the exploration).
using sched_nm = nm_tree<int, std::less<int>, reclaim::leaky, stats::none,
                         tag_policy::bts, void, dsched::sched_atomics>;
using sched_nm_cas_only =
    nm_tree<int, std::less<int>, reclaim::leaky, stats::none,
            tag_policy::cas_only, void, dsched::sched_atomics>;
using sched_efrb = efrb_tree<int, std::less<int>, reclaim::leaky,
                             stats::none, dsched::sched_atomics>;

template <typename Tree>
typename dsched::scenario<Tree>::script op_script(
    std::vector<std::pair<char, int>> ops) {
  return [ops = std::move(ops)](dsched::recorder<Tree>& r) {
    for (const auto& [kind, key] : ops) {
      switch (kind) {
        case 'i':
          r.insert(key);
          break;
        case 'e':
          r.erase(key);
          break;
        case 'c':
          r.contains(key);
          break;
      }
    }
  };
}

template <typename Tree>
dsched::scenario<Tree> make_scenario(std::vector<int> setup_keys,
                                     std::vector<std::vector<std::pair<char, int>>> threads,
                                     std::vector<int> universe) {
  dsched::scenario<Tree> sc;
  sc.setup = [setup_keys = std::move(setup_keys)](Tree& t) {
    for (const int k : setup_keys) ASSERT_TRUE(t.insert(k));
  };
  for (auto& ops : threads) sc.threads.push_back(op_script<Tree>(std::move(ops)));
  sc.universe = std::move(universe);
  return sc;
}

// --------------------------------------------------------------------
// The acceptance scenario: two deletes race on sibling leaves. Their
// cleanups contend for the same parent/ancestor edges — the delete that
// loses the ancestor CAS must re-seek and excise through the other's
// frozen region (paper §3.4's trickiest window).
// --------------------------------------------------------------------

TEST(DschedScenarios, DeleteDeleteOnSiblingLeavesExhaustive) {
  auto sc = make_scenario<sched_nm>(
      /*setup=*/{1, 2},
      /*threads=*/{{{'e', 1}}, {{'e', 2}}},
      /*universe=*/{1, 2});
  const auto sum = dsched::explore_dfs(sc, dsched::scaled_budget(2048));
  EXPECT_TRUE(sum.all_ok()) << sum.first_failure;
  // The acceptance bar: >= 1000 distinct interleavings, all sound.
  EXPECT_GE(sum.executions, 1000u);
}

TEST(DschedScenarios, DeleteDeleteOnSiblingLeavesPct) {
  auto sc = make_scenario<sched_nm>({1, 2}, {{{'e', 1}}, {{'e', 2}}},
                                    {1, 2});
  const auto sum = dsched::explore_pct(sc, /*base_seed=*/1, dsched::scaled_budget(200),
                                       /*depth=*/3);
  EXPECT_TRUE(sum.all_ok()) << sum.first_failure;
  EXPECT_EQ(sum.executions, 200u);
}

// --------------------------------------------------------------------
// Satellite scenario 1: exhaustive 2-thread insert/delete conflict on
// adjacent keys. The insert's CAS targets the very edge the delete
// flags; every relative position of the insert CAS against the delete's
// flag CAS / tag BTS / ancestor CAS is visited, including the ones
// where the insert must help the delete's cleanup before retrying.
// --------------------------------------------------------------------

TEST(DschedScenarios, InsertDeleteConflictOnAdjacentKeysExhaustive) {
  auto sc = make_scenario<sched_nm>(
      /*setup=*/{1},
      /*threads=*/{{{'i', 2}}, {{'e', 1}}},
      /*universe=*/{1, 2});
  const auto sum = dsched::explore_dfs(sc, dsched::scaled_budget(2048));
  EXPECT_TRUE(sum.all_ok()) << sum.first_failure;
  EXPECT_GE(sum.executions, 1000u);
}

// Re-insert of the key being deleted: the insert can land on the edge
// between the delete's flag CAS and its physical removal, which must
// either fail-and-help or linearize after the delete.
TEST(DschedScenarios, ReinsertRacesDeleteOfSameKey) {
  auto sc = make_scenario<sched_nm>(
      /*setup=*/{1, 2},
      /*threads=*/{{{'e', 1}, {'i', 1}}, {{'e', 1}}},
      /*universe=*/{1, 2});
  const auto dfs = dsched::explore_dfs(sc, dsched::scaled_budget(1500));
  EXPECT_TRUE(dfs.all_ok()) << dfs.first_failure;
  const auto prio = dsched::explore_pct(sc, 11, dsched::scaled_budget(150), /*depth=*/3);
  EXPECT_TRUE(prio.all_ok()) << prio.first_failure;
}

// --------------------------------------------------------------------
// Satellite scenario 2: 3-thread helping chain. T0's delete stalls at
// any point of its cleanup; T1's delete of the sibling and T2's insert
// below the flagged edge must complete it (failed-injection helping,
// Alg. 3 lines 79-81 and Alg. 2 line 55).
// --------------------------------------------------------------------

TEST(DschedScenarios, ThreeThreadHelpingChainDfs) {
  auto sc = make_scenario<sched_nm>(
      /*setup=*/{1, 2, 3},
      /*threads=*/{{{'e', 1}}, {{'e', 2}}, {{'i', 0}}},
      /*universe=*/{0, 1, 2, 3});
  const auto sum = dsched::explore_dfs(sc, dsched::scaled_budget(1200));
  EXPECT_TRUE(sum.all_ok()) << sum.first_failure;
  EXPECT_GE(sum.executions, 1000u);
}

TEST(DschedScenarios, ThreeThreadHelpingChainPct) {
  auto sc = make_scenario<sched_nm>({1, 2, 3},
                                    {{{'e', 1}}, {{'e', 2}}, {{'i', 0}}},
                                    {0, 1, 2, 3});
  const auto sum = dsched::explore_pct(sc, /*base_seed=*/21, dsched::scaled_budget(200),
                                       /*depth=*/3);
  EXPECT_TRUE(sum.all_ok()) << sum.first_failure;
}

// --------------------------------------------------------------------
// Satellite scenario 3: multi-leaf cleanup excision (paper Fig. 2). A
// chain of logically deleted leaves under one ancestor edge; the
// winning cleanup's single ancestor CAS excises the whole frozen
// region, and the losing deletes must still linearize.
// --------------------------------------------------------------------

TEST(DschedScenarios, MultiLeafExcisionChain) {
  // Keys 1..3 inserted ascending degenerate to a right spine, so the
  // three deletes' cleanup regions nest — the Fig. 2 configuration.
  auto sc = make_scenario<sched_nm>(
      /*setup=*/{1, 2, 3},
      /*threads=*/{{{'e', 3}}, {{'e', 2}}, {{'e', 1}}},
      /*universe=*/{1, 2, 3});
  const auto dfs = dsched::explore_dfs(sc, dsched::scaled_budget(1200));
  EXPECT_TRUE(dfs.all_ok()) << dfs.first_failure;
  const auto prio = dsched::explore_pct(sc, 31, dsched::scaled_budget(200), /*depth=*/4);
  EXPECT_TRUE(prio.all_ok()) << prio.first_failure;
}

// --------------------------------------------------------------------
// Satellite scenario 4: PCT sweep over 1k seeds on a mixed scenario —
// every seed is an independent, replayable priority schedule.
// --------------------------------------------------------------------

TEST(DschedScenarios, PctSweepOverThousandSeeds) {
  auto sc = make_scenario<sched_nm>(
      /*setup=*/{2, 4},
      /*threads=*/{{{'e', 2}, {'i', 3}}, {{'i', 2}, {'e', 4}},
                   {{'c', 2}, {'c', 3}}},
      /*universe=*/{2, 3, 4});
  const auto sum = dsched::explore_pct(sc, /*base_seed=*/1000,
                                       dsched::scaled_budget(1000),
                                       /*depth=*/3);
  EXPECT_TRUE(sum.all_ok()) << sum.first_failure;
  EXPECT_GE(sum.executions, 1000u);
}

TEST(DschedScenarios, RandomWalkSweep) {
  auto sc = make_scenario<sched_nm>(
      {1, 3}, {{{'e', 1}, {'i', 2}}, {{'e', 3}, {'i', 1}}}, {1, 2, 3});
  const auto sum = dsched::explore_random(sc, /*base_seed=*/5000,
                                          dsched::scaled_budget(500));
  EXPECT_TRUE(sum.all_ok()) << sum.first_failure;
}

// --------------------------------------------------------------------
// Replay: a recorded schedule reruns to the identical trace — the
// property every printed failure seed relies on.
// --------------------------------------------------------------------

TEST(DschedScenarios, FailureTraceFormatReplaysExactly) {
  auto sc = make_scenario<sched_nm>({1, 2}, {{{'e', 1}}, {{'e', 2}}},
                                    {1, 2});
  dsched::random_walk walk(77);
  const auto original = dsched::run_scenario<sched_nm>(
      sc, [&](std::size_t s, std::uint32_t m) { return walk(s, m); });
  ASSERT_TRUE(original.ok()) << original.describe();

  auto rep =
      dsched::replay::from_string(dsched::format_trace(original.schedule));
  const auto rerun = dsched::run_scenario<sched_nm>(
      sc, [&](std::size_t s, std::uint32_t m) { return rep(s, m); });
  ASSERT_TRUE(rerun.ok()) << rerun.describe();
  EXPECT_EQ(dsched::format_trace(rerun.schedule),
            dsched::format_trace(original.schedule));
}

// --------------------------------------------------------------------
// The CAS-only tagging variant must survive the same races: its BTS
// emulation adds a load+CAS window inside cleanup that the BTS variant
// does not have.
// --------------------------------------------------------------------

TEST(DschedScenarios, CasOnlyTaggingDeleteDeleteRace) {
  auto sc = make_scenario<sched_nm_cas_only>(
      {1, 2}, {{{'e', 1}}, {{'e', 2}}}, {1, 2});
  const auto dfs = dsched::explore_dfs(sc, dsched::scaled_budget(1500));
  EXPECT_TRUE(dfs.all_ok()) << dfs.first_failure;
  const auto prio = dsched::explore_pct(sc, 41, dsched::scaled_budget(150), /*depth=*/3);
  EXPECT_TRUE(prio.all_ok()) << prio.first_failure;
}

// --------------------------------------------------------------------
// EFRB baseline under the same scheduler: its delete can *abort* (mark
// CAS lost -> backtrack CAS on the grandparent), a window the NM paper
// §5 contrasts with its own non-aborting deletes. The helping protocol
// over Info records must stay linearizable through every interleaving.
// --------------------------------------------------------------------

TEST(DschedScenarios, EfrbDeleteDeleteRaceDfs) {
  auto sc = make_scenario<sched_efrb>({1, 2}, {{{'e', 1}}, {{'e', 2}}},
                                      {1, 2});
  const auto sum = dsched::explore_dfs(sc, dsched::scaled_budget(1500));
  EXPECT_TRUE(sum.all_ok()) << sum.first_failure;
  EXPECT_GE(sum.executions, 1000u);
}

TEST(DschedScenarios, EfrbInsertDeleteConflictPct) {
  auto sc = make_scenario<sched_efrb>(
      {1}, {{{'i', 2}}, {{'e', 1}}}, {1, 2});
  const auto sum = dsched::explore_pct(sc, /*base_seed=*/61, dsched::scaled_budget(300),
                                       /*depth=*/3);
  EXPECT_TRUE(sum.all_ok()) << sum.first_failure;
}

// --------------------------------------------------------------------
// Small-space sanity: a scenario tiny enough for the DFS to *exhaust*,
// proving the explorer's termination-and-coverage logic on a real tree
// (a lone insert against a lone contains in a fresh tree).
// --------------------------------------------------------------------

// --------------------------------------------------------------------
// Restart-policy coverage: the anchored retry must stay sound when the
// recorded (ancestor → successor) edge is excised or marked between a
// failed CAS and the local re-seek. The {1,2,3} right spine plus three
// racing deletes nests the cleanup regions (Fig. 2), so the loser of an
// ancestor CAS can hold a seek record whose anchor sits inside the
// winner's excised region — exactly the window anchor validation
// guards. Explored for both tag policies × both restart policies; the
// default-policy aliases above (sched_nm, sched_nm_cas_only) already
// run from_anchor, so the explicit aliases here pin the from_root
// ablation and attach obs::recording to the from_anchor runs so the
// exploration can prove both retry outcomes (local resume AND root
// fallback) were actually exercised.
// --------------------------------------------------------------------

using sched_nm_anchor_rec =
    nm_tree<int, std::less<int>, reclaim::leaky, obs::recording,
            tag_policy::bts, void, dsched::sched_atomics,
            restart::from_anchor>;
using sched_nm_cas_only_anchor_rec =
    nm_tree<int, std::less<int>, reclaim::leaky, obs::recording,
            tag_policy::cas_only, void, dsched::sched_atomics,
            restart::from_anchor>;
using sched_nm_root =
    nm_tree<int, std::less<int>, reclaim::leaky, stats::none,
            tag_policy::bts, void, dsched::sched_atomics,
            restart::from_root>;
using sched_nm_cas_only_root =
    nm_tree<int, std::less<int>, reclaim::leaky, stats::none,
            tag_policy::cas_only, void, dsched::sched_atomics,
            restart::from_root>;

// The excised-anchor scenario: three deletes whose cleanup regions nest
// on the right spine, plus an insert that collides with the deepest
// leaf so the injection-failure retry path is explored too.
template <typename Tree>
dsched::scenario<Tree> anchor_excision_scenario() {
  return make_scenario<Tree>(
      /*setup=*/{1, 2, 3},
      /*threads=*/{{{'e', 3}}, {{'e', 2}}, {{'i', 4}}},
      /*universe=*/{1, 2, 3, 4});
}

TEST(DschedScenarios, AnchorRestartExcisedAnchorDfs) {
  auto sc = anchor_excision_scenario<sched_nm_anchor_rec>();
  obs::metrics_snapshot total;
  sc.on_terminal = [&total](sched_nm_anchor_rec& t) {
    total.merge(t.stats().counters().snapshot());
  };
  const auto sum = dsched::explore_dfs(sc, dsched::scaled_budget(1500));
  EXPECT_TRUE(sum.all_ok()) << sum.first_failure;
  EXPECT_GE(sum.executions, 1000u);
  // A lost ancestor CAS *is* a change of the anchor edge, so the
  // cleanup-mode retries in this scenario must all have detected the
  // excised anchor and fallen back to the root.
  EXPECT_GT(total[obs::counter::seek_anchor_fallbacks], 0u);
  // Attribution algebra, summed over every execution: each attributed
  // restart resolved to exactly one retry outcome.
  EXPECT_EQ(total[obs::counter::seek_restarts],
            total[obs::counter::restarts_injection_fail] +
                total[obs::counter::restarts_cleanup_mode]);
  EXPECT_EQ(total[obs::counter::seek_restarts],
            total[obs::counter::seek_resumes_local] +
                total[obs::counter::seek_anchor_fallbacks]);
}

TEST(DschedScenarios, AnchorRestartExcisedAnchorCasOnlyDfs) {
  auto sc = anchor_excision_scenario<sched_nm_cas_only_anchor_rec>();
  obs::metrics_snapshot total;
  sc.on_terminal = [&total](sched_nm_cas_only_anchor_rec& t) {
    total.merge(t.stats().counters().snapshot());
  };
  const auto sum = dsched::explore_dfs(sc, dsched::scaled_budget(1500));
  EXPECT_TRUE(sum.all_ok()) << sum.first_failure;
  EXPECT_GT(total[obs::counter::seek_anchor_fallbacks], 0u);
  EXPECT_EQ(total[obs::counter::seek_restarts],
            total[obs::counter::seek_resumes_local] +
                total[obs::counter::seek_anchor_fallbacks]);
}

// The local-resume window: two inserts race on the same leaf. The
// loser's failed injection CAS changed only the parent edge; its
// recorded anchor (the grandparent edge) is untouched and clean, so
// every lost race must resume locally — and with no delete anywhere,
// the root fallback must never fire.

TEST(DschedScenarios, AnchorRestartLocalResumeDfs) {
  auto sc = make_scenario<sched_nm_anchor_rec>(
      /*setup=*/{1, 2, 3},
      /*threads=*/{{{'i', 4}}, {{'i', 5}}},
      /*universe=*/{1, 2, 3, 4, 5});
  obs::metrics_snapshot total;
  sc.on_terminal = [&total](sched_nm_anchor_rec& t) {
    total.merge(t.stats().counters().snapshot());
  };
  const auto sum = dsched::explore_dfs(sc, dsched::scaled_budget(2000));
  EXPECT_TRUE(sum.all_ok()) << sum.first_failure;
  EXPECT_GT(total[obs::counter::seek_resumes_local], 0u);
  EXPECT_EQ(total[obs::counter::seek_anchor_fallbacks], 0u);
  EXPECT_EQ(total[obs::counter::seek_restarts],
            total[obs::counter::restarts_injection_fail]);
  EXPECT_EQ(total[obs::counter::seek_restarts],
            total[obs::counter::seek_resumes_local]);
}

TEST(DschedScenarios, AnchorRestartLocalResumeCasOnlyDfs) {
  auto sc = make_scenario<sched_nm_cas_only_anchor_rec>(
      /*setup=*/{1, 2, 3},
      /*threads=*/{{{'i', 4}}, {{'i', 5}}},
      /*universe=*/{1, 2, 3, 4, 5});
  obs::metrics_snapshot total;
  sc.on_terminal = [&total](sched_nm_cas_only_anchor_rec& t) {
    total.merge(t.stats().counters().snapshot());
  };
  const auto sum = dsched::explore_dfs(sc, dsched::scaled_budget(2000));
  EXPECT_TRUE(sum.all_ok()) << sum.first_failure;
  EXPECT_GT(total[obs::counter::seek_resumes_local], 0u);
  EXPECT_EQ(total[obs::counter::seek_anchor_fallbacks], 0u);
}

TEST(DschedScenarios, FromRootExcisedAnchorDfs) {
  auto sc = anchor_excision_scenario<sched_nm_root>();
  const auto sum = dsched::explore_dfs(sc, dsched::scaled_budget(1500));
  EXPECT_TRUE(sum.all_ok()) << sum.first_failure;
  EXPECT_GE(sum.executions, 1000u);
}

TEST(DschedScenarios, FromRootExcisedAnchorCasOnlyDfs) {
  auto sc = anchor_excision_scenario<sched_nm_cas_only_root>();
  const auto sum = dsched::explore_dfs(sc, dsched::scaled_budget(1500));
  EXPECT_TRUE(sum.all_ok()) << sum.first_failure;
}

TEST(DschedScenarios, AnchorRestartMultiLeafExcisionPct) {
  // The pure Fig. 2 chain under a PCT sweep for both restart policies:
  // depth-4 priority preemption is strong on the ancestor-CAS windows
  // that decide whether a loser's anchor survives.
  auto anchored = make_scenario<sched_nm_anchor_rec>(
      {1, 2, 3}, {{{'e', 3}}, {{'e', 2}}, {{'e', 1}}}, {1, 2, 3});
  obs::metrics_snapshot total;
  anchored.on_terminal = [&total](sched_nm_anchor_rec& t) {
    total.merge(t.stats().counters().snapshot());
  };
  const auto a = dsched::explore_pct(anchored, 71, dsched::scaled_budget(300),
                                     /*depth=*/4);
  EXPECT_TRUE(a.all_ok()) << a.first_failure;
  EXPECT_EQ(total[obs::counter::seek_restarts],
            total[obs::counter::seek_resumes_local] +
                total[obs::counter::seek_anchor_fallbacks]);

  auto rooted = make_scenario<sched_nm_root>(
      {1, 2, 3}, {{{'e', 3}}, {{'e', 2}}, {{'e', 1}}}, {1, 2, 3});
  const auto r = dsched::explore_pct(rooted, 71, dsched::scaled_budget(300),
                                     /*depth=*/4);
  EXPECT_TRUE(r.all_ok()) << r.first_failure;
}

// --------------------------------------------------------------------
// Concurrent ordered scans under schedule control. The recorder encodes
// each scan as one contains(k, k ∈ result) observation per key of the
// interval, all sharing the scan's conservative window, so the checker
// proves every reported (and omitted) key explainable by some
// linearization point inside the scan — and asserts sortedness and
// uniqueness on every explored interleaving. Scenarios cover a scan
// racing an insert, racing an erase, and racing the Fig. 2 multi-leaf
// excision chain, across both tag policies and both restart policies.
// --------------------------------------------------------------------

template <typename Tree>
typename dsched::scenario<Tree>::script scan_script(int lo, int hi,
                                                    int repeats = 1) {
  return [lo, hi, repeats](dsched::recorder<Tree>& r) {
    for (int i = 0; i < repeats; ++i) r.range_scan(lo, hi);
  };
}

template <typename Tree>
dsched::scenario<Tree> scan_vs_insert_scenario() {
  dsched::scenario<Tree> sc = make_scenario<Tree>(
      /*setup=*/{2, 4},
      /*threads=*/{{{'i', 3}}},
      /*universe=*/{1, 2, 3, 4, 5});
  // Two back-to-back scans: at least one overlaps the insert's edge CAS
  // in most interleavings, and consecutive windows must stay coherent.
  sc.threads.push_back(scan_script<Tree>(1, 6, /*repeats=*/2));
  return sc;
}

template <typename Tree>
dsched::scenario<Tree> scan_vs_erase_scenario() {
  dsched::scenario<Tree> sc = make_scenario<Tree>(
      /*setup=*/{1, 2, 3},
      /*threads=*/{{{'e', 2}}},
      /*universe=*/{0, 1, 2, 3, 4});
  sc.threads.push_back(scan_script<Tree>(0, 5, /*repeats=*/2));
  return sc;
}

// A scan threaded through two nesting cleanups on the right spine: the
// scan walks exactly the edges the excisions freeze and swing.
template <typename Tree>
dsched::scenario<Tree> scan_vs_excision_scenario() {
  dsched::scenario<Tree> sc = make_scenario<Tree>(
      /*setup=*/{1, 2, 3},
      /*threads=*/{{{'e', 3}}, {{'e', 2}}},
      /*universe=*/{0, 1, 2, 3, 4});
  sc.threads.push_back(scan_script<Tree>(0, 5));
  return sc;
}

TEST(DschedScenarios, ScanRacingInsertDfs) {
  const auto sum = dsched::explore_dfs(scan_vs_insert_scenario<sched_nm>(),
                                       dsched::scaled_budget(2048));
  EXPECT_TRUE(sum.all_ok()) << sum.first_failure;
  EXPECT_GE(sum.executions, 1000u);
}

TEST(DschedScenarios, ScanRacingInsertCasOnlyDfs) {
  const auto sum =
      dsched::explore_dfs(scan_vs_insert_scenario<sched_nm_cas_only>(),
                          dsched::scaled_budget(2048));
  EXPECT_TRUE(sum.all_ok()) << sum.first_failure;
}

TEST(DschedScenarios, ScanRacingEraseDfs) {
  const auto sum = dsched::explore_dfs(scan_vs_erase_scenario<sched_nm>(),
                                       dsched::scaled_budget(2048));
  EXPECT_TRUE(sum.all_ok()) << sum.first_failure;
  EXPECT_GE(sum.executions, 1000u);
}

TEST(DschedScenarios, ScanRacingEraseCasOnlyDfs) {
  const auto sum =
      dsched::explore_dfs(scan_vs_erase_scenario<sched_nm_cas_only>(),
                          dsched::scaled_budget(2048));
  EXPECT_TRUE(sum.all_ok()) << sum.first_failure;
}

TEST(DschedScenarios, ScanRacingMultiLeafExcisionDfs) {
  const auto bts = dsched::explore_dfs(scan_vs_excision_scenario<sched_nm>(),
                                       dsched::scaled_budget(1500));
  EXPECT_TRUE(bts.all_ok()) << bts.first_failure;
  const auto cas =
      dsched::explore_dfs(scan_vs_excision_scenario<sched_nm_cas_only>(),
                          dsched::scaled_budget(1500));
  EXPECT_TRUE(cas.all_ok()) << cas.first_failure;
}

TEST(DschedScenarios, ScanRacingMultiLeafExcisionPct) {
  // The full three-erase chain plus a scan is too wide for DFS; PCT at
  // depth 4 lands preemptions on the ancestor-CAS windows the scan must
  // survive. Swept for both restart policies (the writers' retry path
  // decides which edges the scan can meet mid-swing) and both taggings.
  auto anchored = scan_vs_excision_scenario<sched_nm>();
  anchored.threads.push_back(op_script<sched_nm>({{'e', 1}}));
  const auto a =
      dsched::explore_pct(anchored, 83, dsched::scaled_budget(300),
                          /*depth=*/4);
  EXPECT_TRUE(a.all_ok()) << a.first_failure;

  auto rooted = scan_vs_excision_scenario<sched_nm_root>();
  rooted.threads.push_back(op_script<sched_nm_root>({{'e', 1}}));
  const auto r = dsched::explore_pct(rooted, 83, dsched::scaled_budget(300),
                                     /*depth=*/4);
  EXPECT_TRUE(r.all_ok()) << r.first_failure;

  auto cas_rooted = scan_vs_excision_scenario<sched_nm_cas_only_root>();
  cas_rooted.threads.push_back(op_script<sched_nm_cas_only_root>({{'e', 1}}));
  const auto c =
      dsched::explore_pct(cas_rooted, 83, dsched::scaled_budget(300),
                          /*depth=*/4);
  EXPECT_TRUE(c.all_ok()) << c.first_failure;
}

TEST(DschedScenarios, TinyScenarioExhaustsCompletely) {
  auto sc = make_scenario<sched_nm>(
      /*setup=*/{},
      /*threads=*/{{{'i', 1}}, {{'c', 1}}},
      /*universe=*/{1});
  const auto sum = dsched::explore_dfs(sc, dsched::scaled_budget(100000));
  EXPECT_TRUE(sum.all_ok()) << sum.first_failure;
  EXPECT_TRUE(sum.exhausted);
  EXPECT_GT(sum.executions, 1u);
}

}  // namespace
}  // namespace lfbst
