// Schedule-exploration scenarios for the multiway k-ary tree's own
// hard races: two inserts racing to SPROUT the same full leaf, two
// deletes racing to COALESCE the same parent from sibling slots, and
// the info-record helping chains between them. Same exploration triad
// as tests/dsched/dsched_scenarios_test.cpp — bounded exhaustive DFS,
// PCT sweeps, seeded random walks — with every terminal state checked
// for linearizability and structural validity, and every failure
// carrying a replayable schedule trace (docs/DSCHED.md).
//
// K = 2 makes leaves hold a single key, so the structural operations
// (SPROUT on the second insert, COALESCE on the first delete of a
// sibling pair) fire after one setup key each — the schedules stay
// small enough for DFS to cover the full CAS windows. K = 3 adds the
// in-leaf REPLACE/REPLACE race on a shared non-full leaf.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "dsched/atomics.hpp"
#include "dsched/harness.hpp"
#include "multiway/kary_tree.hpp"

namespace lfbst {
namespace {

// Leaky reclamation keeps the interposed step count at the protocol's
// own CASes; the tuned contended-path extras (backoff, prefetch) are
// disabled automatically under sched_atomics.
using sched_kary = kary_tree<int, 2, std::less<int>, reclaim::leaky,
                             stats::none, dsched::sched_atomics>;
using sched_kary_root =
    kary_tree<int, 2, std::less<int>, reclaim::leaky, stats::none,
              dsched::sched_atomics, restart::from_root>;
using sched_kary3 = kary_tree<int, 3, std::less<int>, reclaim::leaky,
                              stats::none, dsched::sched_atomics>;

template <typename Tree>
typename dsched::scenario<Tree>::script op_script(
    std::vector<std::pair<char, int>> ops) {
  return [ops = std::move(ops)](dsched::recorder<Tree>& r) {
    for (const auto& [kind, key] : ops) {
      switch (kind) {
        case 'i':
          r.insert(key);
          break;
        case 'e':
          r.erase(key);
          break;
        case 'c':
          r.contains(key);
          break;
      }
    }
  };
}

template <typename Tree>
dsched::scenario<Tree> make_scenario(
    std::vector<int> setup_keys,
    std::vector<std::vector<std::pair<char, int>>> threads,
    std::vector<int> universe) {
  dsched::scenario<Tree> sc;
  sc.setup = [setup_keys = std::move(setup_keys)](Tree& t) {
    for (const int k : setup_keys) ASSERT_TRUE(t.insert(k));
  };
  for (auto& ops : threads) {
    sc.threads.push_back(op_script<Tree>(std::move(ops)));
  }
  sc.universe = std::move(universe);
  return sc;
}

// --------------------------------------------------------------------
// SPROUT race: with K = 2 the setup key fills its leaf, so both racing
// inserts route to the same full leaf and each tries to iflag the
// parent and swing the edge to a freshly sprouted internal node. The
// loser must help the winner's info record to completion (or see the
// already-swung edge) and re-seek into the new subtree.
// --------------------------------------------------------------------

TEST(KaryDschedScenarios, InsertInsertSproutSameLeafExhaustive) {
  auto sc = make_scenario<sched_kary>(
      /*setup=*/{2},
      /*threads=*/{{{'i', 1}}, {{'i', 3}}},
      /*universe=*/{1, 2, 3});
  const auto sum = dsched::explore_dfs(sc, dsched::scaled_budget(2048));
  EXPECT_TRUE(sum.all_ok()) << sum.first_failure;
  // The acceptance bar: >= 1000 distinct interleavings, all sound.
  EXPECT_GE(sum.executions, 1000u);
}

TEST(KaryDschedScenarios, InsertInsertSproutSameLeafPct) {
  auto sc = make_scenario<sched_kary>({2}, {{{'i', 1}}, {{'i', 3}}},
                                      {1, 2, 3});
  const auto sum = dsched::explore_pct(sc, /*base_seed=*/1,
                                       dsched::scaled_budget(200),
                                       /*depth=*/3);
  EXPECT_TRUE(sum.all_ok()) << sum.first_failure;
  EXPECT_EQ(sum.executions, 200u);
}

// Same-key variant: exactly one insert may win; the loser must observe
// membership regardless of which side of the SPROUT it lands on.
TEST(KaryDschedScenarios, InsertInsertSameKeyOnFullLeaf) {
  auto sc = make_scenario<sched_kary>(
      /*setup=*/{2},
      /*threads=*/{{{'i', 1}}, {{'i', 1}}},
      /*universe=*/{1, 2});
  const auto sum = dsched::explore_dfs(sc, dsched::scaled_budget(2048));
  EXPECT_TRUE(sum.all_ok()) << sum.first_failure;
}

// K = 3 leaves hold two keys, so two inserts into the same non-full
// leaf race REPLACE against REPLACE on one edge: the loser's injection
// CAS fails against the winner's freshly published leaf and must retry
// against a leaf that now holds the winner's key.
TEST(KaryDschedScenarios, InsertInsertReplaceSameLeafExhaustive) {
  auto sc = make_scenario<sched_kary3>(
      /*setup=*/{},
      /*threads=*/{{{'i', 1}}, {{'i', 2}}},
      /*universe=*/{1, 2});
  const auto sum = dsched::explore_dfs(sc, dsched::scaled_budget(2048));
  EXPECT_TRUE(sum.all_ok()) << sum.first_failure;
  EXPECT_GE(sum.executions, 1000u);
}

// --------------------------------------------------------------------
// COALESCE race: after setup {1, 3} the K = 2 tree is one internal
// node over sibling leaves [1] and [3]. Each racing delete empties its
// own leaf and finds the sibling total fits a single leaf, so both try
// the 4-CAS coalesce of the *same* parent under the *same* grandparent
// — dflag/dflag on gp, mark on p, and the abort path (helping the
// obstruction, unflagging gp) all get explored.
// --------------------------------------------------------------------

TEST(KaryDschedScenarios, DeleteDeleteCoalesceSiblingsExhaustive) {
  auto sc = make_scenario<sched_kary>(
      /*setup=*/{1, 3},
      /*threads=*/{{{'e', 1}}, {{'e', 3}}},
      /*universe=*/{1, 3});
  const auto sum = dsched::explore_dfs(sc, dsched::scaled_budget(2048));
  EXPECT_TRUE(sum.all_ok()) << sum.first_failure;
  EXPECT_GE(sum.executions, 1000u);
}

TEST(KaryDschedScenarios, DeleteDeleteCoalesceSiblingsPct) {
  auto sc = make_scenario<sched_kary>({1, 3}, {{{'e', 1}}, {{'e', 3}}},
                                      {1, 3});
  const auto sum = dsched::explore_pct(sc, /*base_seed=*/11,
                                       dsched::scaled_budget(200),
                                       /*depth=*/3);
  EXPECT_TRUE(sum.all_ok()) << sum.first_failure;
  EXPECT_EQ(sum.executions, 200u);
}

// Delete racing an insert below the same parent: the erase's COALESCE
// wants to excise the internal node the insert's REPLACE is publishing
// into. Either order must linearize; the insert helping the delete's
// dflag (and vice versa, the delete falling back to REPLACE when the
// parent is busy) is the cross-operation helping chain.
TEST(KaryDschedScenarios, InsertDeleteConflictUnderOneParent) {
  auto sc = make_scenario<sched_kary>(
      /*setup=*/{1, 3},
      /*threads=*/{{{'i', 2}}, {{'e', 3}}},
      /*universe=*/{1, 2, 3});
  const auto sum = dsched::explore_dfs(sc, dsched::scaled_budget(2048));
  EXPECT_TRUE(sum.all_ok()) << sum.first_failure;
  EXPECT_GE(sum.executions, 1000u);
}

// Re-insert of the key being deleted: the insert can land between the
// delete's logical removal (edge swing) and its maintenance collapse.
TEST(KaryDschedScenarios, ReinsertRacesDeleteOfSameKey) {
  auto sc = make_scenario<sched_kary>(
      /*setup=*/{1, 3},
      /*threads=*/{{{'e', 1}, {'i', 1}}, {{'e', 1}}},
      /*universe=*/{1, 3});
  const auto dfs = dsched::explore_dfs(sc, dsched::scaled_budget(1500));
  EXPECT_TRUE(dfs.all_ok()) << dfs.first_failure;
  const auto prio = dsched::explore_pct(sc, 21, dsched::scaled_budget(150),
                                        /*depth=*/3);
  EXPECT_TRUE(prio.all_ok()) << prio.first_failure;
}

// --------------------------------------------------------------------
// Three-thread helping chain: two deletes on sibling pairs of a
// two-level tree plus an insert below one of the contended parents.
// A stalled coalesce leaves dflag/mark obstructions every other
// operation must help (or route around via the REPLACE fallback).
// --------------------------------------------------------------------

TEST(KaryDschedScenarios, ThreeThreadHelpingChainPct) {
  auto sc = make_scenario<sched_kary>(
      /*setup=*/{1, 3, 5},
      /*threads=*/{{{'e', 1}}, {{'e', 5}}, {{'i', 2}}},
      /*universe=*/{1, 2, 3, 5});
  const auto sum = dsched::explore_pct(sc, /*base_seed=*/31,
                                       dsched::scaled_budget(300),
                                       /*depth=*/3);
  EXPECT_TRUE(sum.all_ok()) << sum.first_failure;
}

TEST(KaryDschedScenarios, MixedSoupRandomWalk) {
  auto sc = make_scenario<sched_kary>(
      {1, 3}, {{{'e', 1}, {'i', 2}}, {{'e', 3}, {'i', 1}}}, {1, 2, 3});
  const auto sum = dsched::explore_random(sc, /*base_seed=*/5000,
                                          dsched::scaled_budget(500));
  EXPECT_TRUE(sum.all_ok()) << sum.first_failure;
}

// --------------------------------------------------------------------
// Restart-policy ablation: the same SPROUT and COALESCE races under
// restart::from_root. The anchored default takes the resume-local path
// after failed injections; from_root must reach the same terminal
// states from scratch.
// --------------------------------------------------------------------

TEST(KaryDschedScenarios, FromRootSproutRaceDfs) {
  auto sc = make_scenario<sched_kary_root>(
      /*setup=*/{2},
      /*threads=*/{{{'i', 1}}, {{'i', 3}}},
      /*universe=*/{1, 2, 3});
  const auto sum = dsched::explore_dfs(sc, dsched::scaled_budget(2048));
  EXPECT_TRUE(sum.all_ok()) << sum.first_failure;
  EXPECT_GE(sum.executions, 1000u);
}

TEST(KaryDschedScenarios, FromRootCoalesceRaceDfs) {
  auto sc = make_scenario<sched_kary_root>(
      /*setup=*/{1, 3},
      /*threads=*/{{{'e', 1}}, {{'e', 3}}},
      /*universe=*/{1, 3});
  const auto sum = dsched::explore_dfs(sc, dsched::scaled_budget(2048));
  EXPECT_TRUE(sum.all_ok()) << sum.first_failure;
}

// --------------------------------------------------------------------
// Scans under schedule control: a pinned-reclaimer DFS scan threaded
// through a SPROUT and through a COALESCE. The recorder's per-key
// conservative-window encoding proves every reported and omitted key
// explainable by a linearization point inside the scan.
// --------------------------------------------------------------------

template <typename Tree>
typename dsched::scenario<Tree>::script scan_script(int lo, int hi,
                                                    int repeats = 1) {
  return [lo, hi, repeats](dsched::recorder<Tree>& r) {
    for (int i = 0; i < repeats; ++i) r.range_scan(lo, hi);
  };
}

TEST(KaryDschedScenarios, ScanRacingSproutDfs) {
  auto sc = make_scenario<sched_kary>(
      /*setup=*/{2},
      /*threads=*/{{{'i', 1}}},
      /*universe=*/{1, 2, 3});
  sc.threads.push_back(scan_script<sched_kary>(1, 4, /*repeats=*/2));
  const auto sum = dsched::explore_dfs(sc, dsched::scaled_budget(2048));
  EXPECT_TRUE(sum.all_ok()) << sum.first_failure;
  // The pinned scan interposes few steps, so the budget exhausts the
  // whole interleaving space — full coverage, not a sample.
  EXPECT_TRUE(sum.exhausted || sum.executions >= 1000u) << sum.executions;
}

TEST(KaryDschedScenarios, ScanRacingCoalesceDfs) {
  auto sc = make_scenario<sched_kary>(
      /*setup=*/{1, 3},
      /*threads=*/{{{'e', 3}}},
      /*universe=*/{0, 1, 2, 3});
  sc.threads.push_back(scan_script<sched_kary>(0, 4, /*repeats=*/2));
  const auto sum = dsched::explore_dfs(sc, dsched::scaled_budget(2048));
  EXPECT_TRUE(sum.all_ok()) << sum.first_failure;
  EXPECT_GE(sum.executions, 1000u);
}

// --------------------------------------------------------------------
// Small-space sanity: a scenario tiny enough for DFS to exhaust,
// proving the explorer's coverage logic holds on the k-ary stepper.
// --------------------------------------------------------------------

TEST(KaryDschedScenarios, TinyScenarioExhaustsCompletely) {
  auto sc = make_scenario<sched_kary>(
      /*setup=*/{},
      /*threads=*/{{{'i', 1}}, {{'c', 1}}},
      /*universe=*/{1});
  const auto sum = dsched::explore_dfs(sc, dsched::scaled_budget(100000));
  EXPECT_TRUE(sum.all_ok()) << sum.first_failure;
  EXPECT_TRUE(sum.exhausted);
  EXPECT_GT(sum.executions, 1u);
}

}  // namespace
}  // namespace lfbst
