// Unit tests of the dsched scheduler core and strategies, using toy
// logical threads that call schedule_point() directly — no trees — so
// the schedule-tree arithmetic (trace shapes, DFS enumeration counts,
// replay fidelity) can be checked exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "dsched/scheduler.hpp"
#include "dsched/strategies.hpp"

namespace lfbst::dsched {
namespace {

/// A logical thread that hits exactly `points` schedule points and
/// appends its tid to `log` between consecutive points — a fully
/// observable, branch-free workload.
scheduler::thread_fn stepper(unsigned tid, int points,
                             std::vector<unsigned>& log) {
  return [tid, points, &log] {
    for (int i = 0; i < points; ++i) {
      schedule_point();
      log.push_back(tid);
    }
  };
}

unsigned first_runnable(std::size_t, std::uint32_t mask) {
  return static_cast<unsigned>(__builtin_ctz(mask));
}

TEST(DschedScheduler, SchedulePointOutsideExecutionIsANoop) {
  schedule_point();  // must not crash or block on an unmanaged thread
  SUCCEED();
}

TEST(DschedScheduler, RunsSingleThreadToCompletion) {
  std::vector<unsigned> log;
  const trace t =
      scheduler::run({stepper(0, 5, log)}, &first_runnable);
  EXPECT_EQ(log.size(), 5u);
  // A thread with p schedule points takes p+1 scheduler steps: the
  // initial dispatch runs up to the first point, and the last step runs
  // from the final point to completion.
  EXPECT_EQ(t.size(), 6u);
  for (const choice& c : t) {
    EXPECT_EQ(c.chosen, 0u);
    EXPECT_EQ(c.runnable, 1u);
  }
}

TEST(DschedScheduler, SerializesInterleavingPerStrategy) {
  std::vector<unsigned> log;
  // Strict alternation between two 3-point threads.
  auto alternate = [](std::size_t step, std::uint32_t mask) -> unsigned {
    const unsigned want = step % 2;
    return (mask & (1u << want)) ? want
                                 : static_cast<unsigned>(__builtin_ctz(mask));
  };
  scheduler::run({stepper(0, 3, log), stepper(1, 3, log)}, alternate);
  ASSERT_EQ(log.size(), 6u);
  // Log entries follow the alternation (each entry is written by the
  // thread scheduled one step earlier).
  EXPECT_EQ(log, (std::vector<unsigned>{0, 1, 0, 1, 0, 1}));
}

TEST(DschedScheduler, IdenticalSeedsProduceIdenticalTraces) {
  for (const std::uint64_t seed : {1ull, 7ull, 123456789ull}) {
    std::vector<unsigned> log_a, log_b;
    random_walk wa(seed), wb(seed);
    const trace a = scheduler::run({stepper(0, 4, log_a),
                                    stepper(1, 4, log_a)},
                                   [&](std::size_t s, std::uint32_t m) {
                                     return wa(s, m);
                                   });
    const trace b = scheduler::run({stepper(0, 4, log_b),
                                    stepper(1, 4, log_b)},
                                   [&](std::size_t s, std::uint32_t m) {
                                     return wb(s, m);
                                   });
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].chosen, b[i].chosen) << "seed " << seed << " step " << i;
      EXPECT_EQ(a[i].runnable, b[i].runnable);
    }
    EXPECT_EQ(log_a, log_b);
  }
}

TEST(DschedScheduler, ReplayReproducesATraceExactly) {
  std::vector<unsigned> log_a;
  random_walk walk(42);
  const trace original = scheduler::run(
      {stepper(0, 5, log_a), stepper(1, 3, log_a), stepper(2, 4, log_a)},
      [&](std::size_t s, std::uint32_t m) { return walk(s, m); });

  // Round-trip through the printed form, then rerun.
  replay rep = replay::from_string(format_trace(original));
  std::vector<unsigned> log_b;
  const trace rerun = scheduler::run(
      {stepper(0, 5, log_b), stepper(1, 3, log_b), stepper(2, 4, log_b)},
      [&](std::size_t s, std::uint32_t m) { return rep(s, m); });

  ASSERT_EQ(rerun.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(rerun[i].chosen, original[i].chosen) << "step " << i;
  }
  EXPECT_EQ(log_a, log_b);
}

TEST(DschedScheduler, PctIsDeterministicPerSeed) {
  for (const std::uint64_t seed : {3ull, 99ull}) {
    std::vector<unsigned> log_a, log_b;
    pct pa(seed, 3, 3, 16), pb(seed, 3, 3, 16);
    const trace a = scheduler::run(
        {stepper(0, 3, log_a), stepper(1, 3, log_a), stepper(2, 3, log_a)},
        [&](std::size_t s, std::uint32_t m) { return pa(s, m); });
    const trace b = scheduler::run(
        {stepper(0, 3, log_b), stepper(1, 3, log_b), stepper(2, 3, log_b)},
        [&](std::size_t s, std::uint32_t m) { return pb(s, m); });
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].chosen, b[i].chosen);
    }
    EXPECT_EQ(log_a, log_b);
  }
}

// The DFS count for two branch-free threads with a and b steps is the
// binomial C(a+b, a): every interleaving of the two step sequences.
// Thread i makes (points + 1) scheduler steps: the initial dispatch
// reaches the first schedule_point, and the final step runs from the
// last point to completion.
TEST(DschedScheduler, DfsEnumeratesTheFullBinomialSpace) {
  // 2+1=3 and 2+1=3 steps -> C(6,3) = 20 interleavings.
  dfs_explorer dfs(1000);
  std::size_t runs = 0;
  while (dfs.more()) {
    std::vector<unsigned> log;
    const trace t = scheduler::run({stepper(0, 2, log), stepper(1, 2, log)},
                                   dfs.strategy());
    dfs.commit(t);
    ++runs;
  }
  EXPECT_TRUE(dfs.exhausted());
  EXPECT_EQ(dfs.executions(), 20u);
  EXPECT_EQ(runs, 20u);
}

TEST(DschedScheduler, DfsEnumerates3ThreadSpaceExactly) {
  // Three 1-point threads: 2 steps each -> 6!/(2!2!2!) = 90 schedules.
  dfs_explorer dfs(1000);
  std::set<std::string> distinct;
  while (dfs.more()) {
    std::vector<unsigned> log;
    const trace t = scheduler::run(
        {stepper(0, 1, log), stepper(1, 1, log), stepper(2, 1, log)},
        dfs.strategy());
    dfs.commit(t);
    distinct.insert(format_trace(t));
  }
  EXPECT_TRUE(dfs.exhausted());
  EXPECT_EQ(dfs.executions(), 90u);
  EXPECT_EQ(distinct.size(), 90u);  // every explored trace is distinct
}

TEST(DschedScheduler, DfsRespectsItsBudget) {
  dfs_explorer dfs(7);  // space is 20, budget is 7
  while (dfs.more()) {
    std::vector<unsigned> log;
    const trace t = scheduler::run({stepper(0, 2, log), stepper(1, 2, log)},
                                   dfs.strategy());
    dfs.commit(t);
  }
  EXPECT_FALSE(dfs.exhausted());
  EXPECT_EQ(dfs.executions(), 7u);
}

TEST(DschedScheduler, StepBudgetExhaustionThrowsAfterUnblocking) {
  // No shared state in the threads: once the budget blows they run
  // free (concurrently) to completion so the scheduler can join them.
  auto spin = [] {
    for (int i = 0; i < 100; ++i) schedule_point();
  };
  EXPECT_THROW(scheduler::run({spin, spin}, &first_runnable,
                              /*max_steps=*/10),
               std::runtime_error);
}

}  // namespace
}  // namespace lfbst::dsched
