// Reclamation-focused stress: under the epoch policy, readers must never
// observe freed memory, retired counts must drain at quiescence, and the
// leaky policy must keep the paper's address-uniqueness guarantee (no
// node reuse while the tree lives).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/barrier.hpp"
#include "common/rng.hpp"
#include "lfbst/lfbst.hpp"

namespace lfbst {
namespace {

TEST(ReclamationStress, NmEpochReadersDuringHeavyDeletion) {
  // Churners delete and reinsert aggressively (every delete retires an
  // excised chain); readers traverse concurrently. Under a broken grace
  // period the readers would dereference freed pool memory — ASAN-or-
  // crash territory — and the conservation check would diverge.
  nm_tree<long, std::less<long>, reclaim::epoch> t;
  constexpr long kRange = 512;
  for (long k = 0; k < kRange; k += 2) ASSERT_TRUE(t.insert(k));

  std::atomic<bool> stop{false};
  std::atomic<long> net{0};
  std::vector<std::thread> threads;
  for (unsigned tid = 0; tid < 2; ++tid) {
    threads.emplace_back([&, tid] {
      pcg32 rng = pcg32::for_thread(2020, tid);
      long local = 0;
      for (int i = 0; i < 60'000; ++i) {
        const long k = rng.bounded(kRange);
        if (rng.bounded(2) == 0) {
          if (t.insert(k)) ++local;
        } else {
          if (t.erase(k)) --local;
        }
      }
      net.fetch_add(local);
      stop.store(true);
    });
  }
  for (unsigned tid = 0; tid < 2; ++tid) {
    threads.emplace_back([&, tid] {
      pcg32 rng = pcg32::for_thread(3030, tid);
      std::uint64_t hits = 0;
      while (!stop.load(std::memory_order_acquire)) {
        hits += t.contains(rng.bounded(kRange)) ? 1 : 0;
      }
      EXPECT_GT(hits, 0u);  // readers actually ran against live data
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.size_slow(),
            static_cast<std::size_t>(net.load()) + kRange / 2);
  EXPECT_EQ(t.validate(), "");
}

TEST(ReclamationStress, EpochPendingStaysBounded) {
  // With regular advances, the limbo backlog must stay O(scan interval ×
  // threads), not grow linearly with the delete count.
  nm_tree<long, std::less<long>, reclaim::epoch> t;
  for (int round = 0; round < 200; ++round) {
    for (long k = 0; k < 128; ++k) ASSERT_TRUE(t.insert(k));
    for (long k = 0; k < 128; ++k) ASSERT_TRUE(t.erase(k));
  }
  // 200 rounds retire ~200*256 nodes; pending must be a small fraction.
  EXPECT_LT(t.reclaimer_pending(), 5'000u);
}

TEST(ReclamationStress, PendingPollsRaceDeleteHeavyChurn) {
  // Regression test for the epoch pending counters: pending() is a
  // monitoring read that races the retire path by design. The per-slot
  // counters are relaxed atomics precisely so this poll is TSan-clean;
  // this test exists to keep it that way — a revert to plain size_t
  // fields fails the ThreadSanitizer build here.
  nm_tree<long, std::less<long>, reclaim::epoch> t;
  constexpr long kRange = 256;
  for (long k = 0; k < kRange; ++k) ASSERT_TRUE(t.insert(k));

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (unsigned tid = 0; tid < 3; ++tid) {
    threads.emplace_back([&, tid] {
      pcg32 rng = pcg32::for_thread(4040, tid);
      for (int i = 0; i < 40'000; ++i) {
        const long k = rng.bounded(kRange);
        // Delete-heavy: two erase attempts per insert keeps the limbo
        // buckets churning so the poll overlaps live retire() calls.
        if (rng.bounded(3) == 0) {
          t.insert(k);
        } else {
          t.erase(k);
        }
      }
      stop.store(true, std::memory_order_release);
    });
  }
  // Keep polling until the churn ends, with a floor so the poll count
  // does not depend on thread-start timing.
  std::uint64_t polls = 0;
  while (!stop.load(std::memory_order_acquire) || polls < 1'000) {
    const std::size_t pending = t.reclaimer_pending();
    EXPECT_LE(pending, 1'000'000u);  // sanity: no torn/garbage read
    ++polls;
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.validate(), "");
}

TEST(ReclamationStress, LeakyFootprintGrowsEpochFootprintPlateaus) {
  // The observable difference between the two policies: the leaky tree's
  // pool keeps growing under churn (no reuse of removed nodes), while
  // the epoch tree recycles and plateaus.
  constexpr int kRounds = 100;
  constexpr long kKeys = 256;

  nm_tree<long> leaky_tree;
  for (int r = 0; r < kRounds; ++r) {
    for (long k = 0; k < kKeys; ++k) ASSERT_TRUE(leaky_tree.insert(k));
    for (long k = 0; k < kKeys; ++k) ASSERT_TRUE(leaky_tree.erase(k));
  }

  nm_tree<long, std::less<long>, reclaim::epoch> epoch_tree;
  for (int r = 0; r < kRounds; ++r) {
    for (long k = 0; k < kKeys; ++k) ASSERT_TRUE(epoch_tree.insert(k));
    for (long k = 0; k < kKeys; ++k) ASSERT_TRUE(epoch_tree.erase(k));
  }

  EXPECT_GT(leaky_tree.footprint_bytes(), 4 * epoch_tree.footprint_bytes())
      << "leaky=" << leaky_tree.footprint_bytes()
      << " epoch=" << epoch_tree.footprint_bytes();
}

TEST(ReclamationStress, EfrbAndHjAndBccoEpochChurnConcurrent) {
  // The baselines' retire points are different (owner-retires vs
  // splicer-retires); hammer each under the epoch policy.
  auto hammer = [](auto& tree) {
    std::atomic<long> net{0};
    spin_barrier barrier(4);
    std::vector<std::thread> threads;
    for (unsigned tid = 0; tid < 4; ++tid) {
      threads.emplace_back([&, tid] {
        pcg32 rng = pcg32::for_thread(606, tid);
        long local = 0;
        barrier.arrive_and_wait();
        for (int i = 0; i < 25'000; ++i) {
          const long k = rng.bounded(128);
          if (rng.bounded(2) == 0) {
            if (tree.insert(k)) ++local;
          } else {
            if (tree.erase(k)) --local;
          }
        }
        net.fetch_add(local);
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(tree.size_slow(), static_cast<std::size_t>(net.load()));
    EXPECT_EQ(tree.validate(), "");
  };

  {
    efrb_tree<long, std::less<long>, reclaim::epoch> t;
    hammer(t);
  }
  {
    hj_tree<long, std::less<long>, reclaim::epoch> t;
    hammer(t);
  }
  {
    bcco_tree<long, std::less<long>, reclaim::epoch> t;
    hammer(t);
  }
}

TEST(ReclamationStress, DestructionAfterChurnIsClean) {
  // Destroying trees with pending retirements and live marked regions
  // planted by incomplete (helped) operations must not double-free —
  // this test's value is mostly under ASAN, but a crash fails it anywhere.
  for (int round = 0; round < 10; ++round) {
    nm_tree<long, std::less<long>, reclaim::epoch> t;
    std::vector<std::thread> threads;
    for (unsigned tid = 0; tid < 4; ++tid) {
      threads.emplace_back([&, tid] {
        pcg32 rng = pcg32::for_thread(round * 10 + tid, tid);
        for (int i = 0; i < 5'000; ++i) {
          const long k = rng.bounded(64);
          if (rng.bounded(2) == 0) {
            t.insert(k);
          } else {
            t.erase(k);
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    // t destroyed here with whatever pending state remains.
  }
  SUCCEED();
}

}  // namespace
}  // namespace lfbst
