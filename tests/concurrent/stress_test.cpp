// Concurrent stress tests, typed over every implementation. On this
// class of machine threads are heavily preempted mid-operation, which is
// exactly the regime where helping paths and marked-edge invariants earn
// their keep (a preempted delete is indistinguishable from a stalled
// one).
//
// Three independent oracles:
//   * conservation — final size must equal successful inserts minus
//     successful erases, summed over all threads;
//   * stripe ownership — threads operate on disjoint key stripes, so
//     each stripe's final membership is exactly predictable despite
//     structural interference between stripes;
//   * anchors — keys inserted before the churn and never deleted must be
//     visible in every read; keys never inserted must never appear.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/barrier.hpp"
#include "common/rng.hpp"
#include "lfbst/lfbst.hpp"

namespace lfbst {
namespace {

constexpr unsigned kThreads = 4;

template <typename Tree>
class ConcurrentStress : public ::testing::Test {
 public:
  Tree tree;
};

using AllTrees =
    ::testing::Types<nm_tree<long>, efrb_tree<long>, hj_tree<long>,
                     bcco_tree<long>, coarse_tree<long>, dvy_tree<long>,
                     dvy_tree<long, std::less<long>, reclaim::epoch>,
                     nm_tree<long, std::less<long>, reclaim::epoch>,
                     nm_tree<long, std::less<long>, reclaim::leaky,
                             stats::none, tag_policy::cas_only>,
                     nm_tree<long, std::less<long>, reclaim::hazard>,
                     // multiway k-ary tree, across its policy axes
                     kary_tree<long, 4>,
                     kary_tree<long, 8, std::less<long>, reclaim::epoch>,
                     kary_tree<long, 8, std::less<long>, reclaim::hazard>,
                     kary_tree<long, 16, std::less<long>, reclaim::hazard,
                               stats::none, atomics::native,
                               restart::from_root>>;

class TreeNames {
 public:
  template <typename T>
  static std::string GetName(int i) {
    // gtest filters treat '-' as the negative-pattern separator, so the
    // algorithm names ("NM-BST") must be sanitized or ctest's generated
    // --gtest_filter would silently match zero tests.
    std::string name(T::algorithm_name);
    for (char& c : name) {
      if (c == '-') c = '_';
    }
    return name + "_" + std::to_string(i);
  }
};

TYPED_TEST_SUITE(ConcurrentStress, AllTrees, TreeNames);

TYPED_TEST(ConcurrentStress, MixedSoupConservation) {
  auto& set = this->tree;
  constexpr int kOpsPerThread = 40'000;
  constexpr long kRange = 256;  // high contention
  std::atomic<long> net{0};  // successful inserts - successful erases
  spin_barrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (unsigned tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      pcg32 rng = pcg32::for_thread(2014, tid);
      long local_net = 0;
      barrier.arrive_and_wait();
      for (int i = 0; i < kOpsPerThread; ++i) {
        const long k = rng.bounded(kRange);
        switch (rng.bounded(3)) {
          case 0:
            if (set.insert(k)) ++local_net;
            break;
          case 1:
            if (set.erase(k)) --local_net;
            break;
          default:
            (void)set.contains(k);
        }
      }
      net.fetch_add(local_net);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(set.size_slow(), static_cast<std::size_t>(net.load()));
  EXPECT_EQ(set.validate(), "");
}

TYPED_TEST(ConcurrentStress, StripeOwnershipExactMembership) {
  auto& set = this->tree;
  constexpr long kStripe = 512;
  spin_barrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (unsigned tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      const long base = static_cast<long>(tid) * kStripe;
      pcg32 rng = pcg32::for_thread(7, tid);
      barrier.arrive_and_wait();
      // Deterministic end state per stripe: every key inserted; odd keys
      // erased; every third key erased-then-reinserted. Random shuffle
      // of operation interleaving within the stripe via random walk.
      for (long k = 0; k < kStripe; ++k) ASSERT_TRUE(set.insert(base + k));
      for (long k = 1; k < kStripe; k += 2) {
        ASSERT_TRUE(set.erase(base + k));
      }
      for (long k = 0; k < kStripe; k += 3) {
        if (k % 2 == 1) {
          ASSERT_TRUE(set.insert(base + k));  // erased above, put back
        } else {
          ASSERT_TRUE(set.erase(base + k));  // still present, remove
          ASSERT_TRUE(set.insert(base + k));
        }
      }
      // Extra churn at random stripe keys (net zero).
      for (int i = 0; i < 3000; ++i) {
        const long k = base + rng.bounded(kStripe);
        if (set.insert(k)) {
          ASSERT_TRUE(set.erase(k));
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  for (unsigned tid = 0; tid < kThreads; ++tid) {
    const long base = static_cast<long>(tid) * kStripe;
    for (long k = 0; k < kStripe; ++k) {
      const bool expected = (k % 2 == 0) || (k % 3 == 0);
      ASSERT_EQ(set.contains(base + k), expected)
          << "tid=" << tid << " k=" << k;
    }
  }
  EXPECT_EQ(set.validate(), "");
}

TYPED_TEST(ConcurrentStress, AnchorsStayVisibleUnderChurn) {
  auto& set = this->tree;
  // Anchors: negative keys, inserted up front, never touched again.
  constexpr long kAnchors = 128;
  for (long a = 1; a <= kAnchors; ++a) ASSERT_TRUE(set.insert(-a));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};
  std::vector<std::thread> threads;
  // Two churners on positive keys.
  for (unsigned tid = 0; tid < 2; ++tid) {
    threads.emplace_back([&, tid] {
      pcg32 rng = pcg32::for_thread(99, tid);
      for (int i = 0; i < 60'000; ++i) {
        const long k = rng.bounded(128);
        if (rng.bounded(2) == 0) {
          set.insert(k);
        } else {
          set.erase(k);
        }
      }
      stop.store(true);
    });
  }
  // Two readers validating anchors and phantoms.
  for (unsigned tid = 0; tid < 2; ++tid) {
    threads.emplace_back([&, tid] {
      pcg32 rng = pcg32::for_thread(7000 + tid, tid);
      while (!stop.load(std::memory_order_acquire)) {
        const long a = 1 + rng.bounded(kAnchors);
        if (!set.contains(-a)) violations.fetch_add(1);
        // Phantom: key far outside any inserted range.
        if (set.contains(1'000'000 + static_cast<long>(a))) {
          violations.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(set.validate(), "");
}

TYPED_TEST(ConcurrentStress, DuelingDeletesEachKeyRemovedOnce) {
  auto& set = this->tree;
  constexpr long kKeys = 4096;
  for (long k = 0; k < kKeys; ++k) ASSERT_TRUE(set.insert(k));

  // All threads race to delete the same keys; each key must be won by
  // exactly one thread.
  std::atomic<long> victories{0};
  spin_barrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (unsigned tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      long wins = 0;
      barrier.arrive_and_wait();
      // Sweep in different directions per thread for maximum overlap.
      if (tid % 2 == 0) {
        for (long k = 0; k < kKeys; ++k) wins += set.erase(k) ? 1 : 0;
      } else {
        for (long k = kKeys - 1; k >= 0; --k) wins += set.erase(k) ? 1 : 0;
      }
      victories.fetch_add(wins);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(victories.load(), kKeys);
  EXPECT_EQ(set.size_slow(), 0u);
  EXPECT_EQ(set.validate(), "");
}

TYPED_TEST(ConcurrentStress, DuelingInsertsEachKeyAddedOnce) {
  auto& set = this->tree;
  constexpr long kKeys = 4096;
  std::atomic<long> victories{0};
  spin_barrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (unsigned tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      long wins = 0;
      barrier.arrive_and_wait();
      if (tid % 2 == 0) {
        for (long k = 0; k < kKeys; ++k) wins += set.insert(k) ? 1 : 0;
      } else {
        for (long k = kKeys - 1; k >= 0; --k) wins += set.insert(k) ? 1 : 0;
      }
      victories.fetch_add(wins);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(victories.load(), kKeys);
  EXPECT_EQ(set.size_slow(), static_cast<std::size_t>(kKeys));
  EXPECT_EQ(set.validate(), "");
}

TYPED_TEST(ConcurrentStress, InsertEraseDuelOnSingleKey) {
  // The tightest possible conflict: every thread flips the same key.
  // Conservation still must hold exactly.
  auto& set = this->tree;
  std::atomic<long> net{0};
  spin_barrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (unsigned tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      long local = 0;
      barrier.arrive_and_wait();
      for (int i = 0; i < 30'000; ++i) {
        if ((i + tid) % 2 == 0) {
          if (set.insert(42)) ++local;
        } else {
          if (set.erase(42)) --local;
        }
      }
      net.fetch_add(local);
    });
  }
  for (auto& t : threads) t.join();
  const long n = net.load();
  EXPECT_TRUE(n == 0 || n == 1) << n;
  EXPECT_EQ(set.size_slow(), static_cast<std::size_t>(n));
  EXPECT_EQ(set.validate(), "");
}

}  // namespace
}  // namespace lfbst
