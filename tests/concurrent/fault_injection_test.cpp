// Fault-injection property tests for the NM tree: randomized *stalled
// deletes* (operations that crashed right after their injection CAS —
// the failure mode lock-freedom exists for) are planted among live
// traffic, across many seeds. After the storm, a recovery sweep must be
// able to complete every orphaned delete, and the tree must be exactly
// the oracle's set.
//
// This is the closest a test can get to "kill -9 a thread mid-delete"
// without actual process surgery: the flagged edge is indistinguishable
// from a delete whose owner will never run again.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/natarajan_tree.hpp"
#include "../core/nm_test_access.hpp"

namespace lfbst {
namespace {

using access = nm_tree_test_access;

struct fault_params {
  std::uint64_t seed;
  long key_range;
  int stall_permille;  // fraction of deletes that stall instead
};

std::string fault_name(const ::testing::TestParamInfo<fault_params>& info) {
  return "seed" + std::to_string(info.param.seed) + "_range" +
         std::to_string(info.param.key_range) + "_stall" +
         std::to_string(info.param.stall_permille);
}

class FaultInjection : public ::testing::TestWithParam<fault_params> {};

TEST_P(FaultInjection, StalledDeletesNeverCorruptAndAlwaysRecover) {
  const fault_params p = GetParam();
  nm_tree<long> t;
  // Oracle tracks *intended* state: a stalled delete has not linearized,
  // so its key remains a member until recovery completes it.
  std::set<long> oracle;
  std::set<long> stalled;  // keys with an orphaned flagged edge
  pcg32 rng(p.seed);

  for (int i = 0; i < 40'000; ++i) {
    const long k = static_cast<long>(rng.next64() % p.key_range);
    switch (rng.bounded(4)) {
      case 0:
        if (stalled.contains(k)) break;  // frozen edge: skip (see below)
        ASSERT_EQ(t.insert(k), oracle.insert(k).second) << "i=" << i;
        break;
      case 1:
        if (stalled.contains(k)) break;
        if (oracle.contains(k) &&
            rng.bounded(1000) < static_cast<std::uint32_t>(p.stall_permille)) {
          // Crash a delete after its injection CAS. May fail if a
          // neighbouring stalled edge blocks the flag — then skip.
          if (access::inject_stalled_delete(t, k)) stalled.insert(k);
          break;
        }
        ASSERT_EQ(t.erase(k), oracle.erase(k) > 0) << "i=" << i;
        break;
      default:
        // A stalled key is still logically present (its delete never
        // linearized) *unless* helping already removed it — both answers
        // are legal while the orphan is pending, so only assert on
        // non-stalled keys.
        if (!stalled.contains(k)) {
          ASSERT_EQ(t.contains(k), oracle.contains(k)) << "i=" << i;
        }
    }
  }

  // Recovery sweep: complete every orphaned delete, as a helper would.
  for (const long k : stalled) {
    if (t.contains(k)) access::run_cleanup(t, k);
    EXPECT_FALSE(t.contains(k)) << "orphaned delete of " << k
                                << " not recoverable";
    oracle.erase(k);
  }

  EXPECT_EQ(t.size_slow(), oracle.size());
  EXPECT_EQ(t.validate(), "");
  std::vector<long> seen;
  t.for_each_slow([&seen](long k) { seen.push_back(k); });
  EXPECT_TRUE(
      std::equal(seen.begin(), seen.end(), oracle.begin(), oracle.end()));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FaultInjection,
    ::testing::Values(fault_params{1, 64, 200}, fault_params{2, 64, 500},
                      fault_params{3, 1'000, 100},
                      fault_params{4, 1'000, 300},
                      fault_params{5, 20'000, 100},
                      fault_params{6, 16, 400}, fault_params{7, 16, 700},
                      fault_params{8, 500, 250}),
    fault_name);

TEST(FaultInjectionConcurrent, OrphansPlantedUnderLiveTrafficAreAbsorbed) {
  // Stalled deletes planted *while* worker threads churn: workers must
  // keep making progress (helping through the orphans), and a final
  // sweep must clear every orphan.
  nm_tree<long> t;
  constexpr long kRange = 512;
  for (long k = 0; k < kRange; ++k) ASSERT_TRUE(t.insert(k));

  std::atomic<bool> stop{false};
  std::vector<long> stalled;
  std::thread saboteur([&] {
    pcg32 rng(13);
    for (int i = 0; i < 200; ++i) {
      const long k = rng.bounded(kRange);
      if (access::inject_stalled_delete(t, k)) stalled.push_back(k);
      std::this_thread::yield();
    }
    stop.store(true);
  });
  std::vector<std::thread> workers;
  for (unsigned tid = 0; tid < 3; ++tid) {
    workers.emplace_back([&, tid] {
      pcg32 rng = pcg32::for_thread(31, tid);
      while (!stop.load(std::memory_order_acquire)) {
        const long k = kRange + rng.bounded(kRange);  // disjoint stripe
        if (rng.bounded(2) == 0) {
          t.insert(k);
        } else {
          t.erase(k);
        }
      }
    });
  }
  saboteur.join();
  for (auto& w : workers) w.join();

  for (const long k : stalled) {
    if (t.contains(k)) access::run_cleanup(t, k);
    EXPECT_FALSE(t.contains(k));
  }
  EXPECT_EQ(t.validate(), "");
}

}  // namespace
}  // namespace lfbst
