// Concurrency tests aimed specifically at the NM-BST's helping machinery
// and progress guarantees: stalled deletes planted white-box style while
// other threads operate, and adversarial interleavings around shared
// injection points.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/barrier.hpp"
#include "common/rng.hpp"
#include "core/natarajan_tree.hpp"
#include "../core/nm_test_access.hpp"

namespace lfbst {
namespace {

using access = nm_tree_test_access;

TEST(Helping, ConcurrentOpsCompleteStalledDeletes) {
  // Plant stalled deletes on a slice of keys, then let worker threads
  // churn neighbouring keys. Every stalled delete must be completed by
  // helpers (its key eventually absent), and the final tree must be
  // mark-free.
  nm_tree<long> t;
  constexpr long kKeys = 1024;
  for (long k = 0; k < kKeys; ++k) ASSERT_TRUE(t.insert(k));
  std::vector<long> stalled;
  for (long k = 0; k < kKeys; k += 16) {
    if (access::inject_stalled_delete(t, k)) stalled.push_back(k);
  }
  ASSERT_FALSE(stalled.empty());

  std::vector<std::thread> threads;
  for (unsigned tid = 0; tid < 4; ++tid) {
    threads.emplace_back([&, tid] {
      pcg32 rng = pcg32::for_thread(17, tid);
      for (int i = 0; i < 50'000; ++i) {
        const long k = rng.bounded(kKeys);
        if (k % 16 == 0) continue;  // never touch stalled keys directly
        if (rng.bounded(2) == 0) {
          t.insert(k);
        } else {
          t.erase(k);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  // Helpers complete a stalled delete only when they collide with its
  // injection point, so finish any survivors explicitly — each must be
  // completable in one cleanup pass and gone afterwards.
  for (long k : stalled) {
    if (t.contains(k)) access::run_cleanup(t, k);
    EXPECT_FALSE(t.contains(k)) << "stalled delete of " << k << " not done";
  }
  EXPECT_EQ(t.validate(), "");
}

TEST(Helping, InsertsNextToStalledDeletesAlwaysSucceed) {
  // Lock-freedom in miniature: stalled deletes may slow an insert at the
  // same injection point but can never block it.
  nm_tree<long> t;
  constexpr long kPairs = 512;
  for (long k = 0; k < kPairs; ++k) ASSERT_TRUE(t.insert(k * 10));
  for (long k = 0; k < kPairs; ++k) {
    ASSERT_TRUE(access::inject_stalled_delete(t, k * 10));
  }
  spin_barrier barrier(4);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (unsigned tid = 0; tid < 4; ++tid) {
    threads.emplace_back([&, tid] {
      barrier.arrive_and_wait();
      // Each thread inserts a distinct neighbour of every stalled key;
      // every insert must succeed (distinct keys).
      for (long k = 0; k < kPairs; ++k) {
        if (!t.insert(k * 10 + 1 + static_cast<long>(tid))) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  for (long k = 0; k < kPairs; ++k) {
    // The stalled deletes were at the inserts' injection points, so the
    // first colliding insert helped them finish.
    EXPECT_FALSE(t.contains(k * 10)) << k;
    for (long d = 1; d <= 4; ++d) EXPECT_TRUE(t.contains(k * 10 + d));
  }
  EXPECT_EQ(t.validate(), "");
}

TEST(Helping, RacingEraseOnFlaggedKeyResolvesExactlyOnce) {
  // One stalled delete + N threads calling erase on the same key: the
  // erase calls must collectively return at most... exactly zero
  // successes (the key's removal is owned by the *stalled* operation —
  // helpers complete it, but their own erase returns false because the
  // injection CAS can never succeed on a flagged edge), and the key must
  // be gone afterwards.
  for (int round = 0; round < 20; ++round) {
    nm_tree<long> t;
    t.insert(10);
    t.insert(20);
    t.insert(30);
    ASSERT_TRUE(access::inject_stalled_delete(t, 20));
    std::atomic<int> wins{0};
    spin_barrier barrier(4);
    std::vector<std::thread> threads;
    for (unsigned tid = 0; tid < 4; ++tid) {
      threads.emplace_back([&] {
        barrier.arrive_and_wait();
        if (t.erase(20)) wins.fetch_add(1);
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(wins.load(), 0) << "round " << round;
    EXPECT_FALSE(t.contains(20)) << "round " << round;
    EXPECT_TRUE(t.contains(10));
    EXPECT_TRUE(t.contains(30));
    EXPECT_EQ(t.validate(), "");
  }
}

TEST(Helping, ProgressUnderPathologicalContention) {
  // All threads hammer a 4-key tree with every operation type. Total
  // operation count is fixed; the test passing at all is the progress
  // property (no livelock/deadlock), and conservation checks safety.
  nm_tree<long> t;
  std::atomic<long> net{0};
  spin_barrier barrier(8);
  std::vector<std::thread> threads;
  for (unsigned tid = 0; tid < 8; ++tid) {
    threads.emplace_back([&, tid] {
      pcg32 rng = pcg32::for_thread(4242, tid);
      long local = 0;
      barrier.arrive_and_wait();
      for (int i = 0; i < 20'000; ++i) {
        const long k = rng.bounded(4);
        switch (rng.bounded(3)) {
          case 0:
            if (t.insert(k)) ++local;
            break;
          case 1:
            if (t.erase(k)) --local;
            break;
          default:
            (void)t.contains(k);
        }
      }
      net.fetch_add(local);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.size_slow(), static_cast<std::size_t>(net.load()));
  EXPECT_EQ(t.validate(), "");
}

TEST(Helping, EpochVariantUnderSameContention) {
  nm_tree<long, std::less<long>, reclaim::epoch> t;
  std::atomic<long> net{0};
  spin_barrier barrier(4);
  std::vector<std::thread> threads;
  for (unsigned tid = 0; tid < 4; ++tid) {
    threads.emplace_back([&, tid] {
      pcg32 rng = pcg32::for_thread(31337, tid);
      long local = 0;
      barrier.arrive_and_wait();
      for (int i = 0; i < 40'000; ++i) {
        const long k = rng.bounded(64);
        if (rng.bounded(2) == 0) {
          if (t.insert(k)) ++local;
        } else {
          if (t.erase(k)) --local;
        }
      }
      net.fetch_add(local);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.size_slow(), static_cast<std::size_t>(net.load()));
  EXPECT_EQ(t.validate(), "");
  // After a full drain every retired node must have been freed.
  // (drain happens in the destructor; pending() just needs to be sane.)
  EXPECT_LT(t.reclaimer_pending(), 1'000'000u);
}

}  // namespace
}  // namespace lfbst
