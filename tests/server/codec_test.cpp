// Wire-codec tests for src/server/protocol.hpp: exact round-trips for
// every frame type, the incremental-decode contract (need_more on every
// strict prefix, one frame consumed at a time), and a structure-aware
// fuzzer that mutates valid frames and throws garbage at the decoder —
// asserting it never crashes, never reads past the bytes it was given
// (the spans are heap-exact so ASan catches a single-byte over-read),
// and never accepts a frame whose re-encoding disagrees with it.
#include "server/protocol.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "common/rng.hpp"

namespace lfbst::server {
namespace {

// --- helpers ---------------------------------------------------------

std::vector<std::uint8_t> encode(const request& req) {
  std::vector<std::uint8_t> out;
  encode_request(out, req);
  return out;
}

std::vector<std::uint8_t> encode(const response& resp) {
  std::vector<std::uint8_t> out;
  encode_response(out, resp);
  return out;
}

/// Decodes from a heap buffer sized exactly to `len` bytes so any
/// out-of-bounds read trips ASan instead of landing in slack space.
template <typename Frame, typename Decoder>
decode_status decode_exact(const std::vector<std::uint8_t>& bytes,
                           Decoder&& decode, Frame& out,
                           std::size_t& consumed) {
  const std::size_t len = bytes.size();
  std::unique_ptr<std::uint8_t[]> exact(new std::uint8_t[len ? len : 1]);
  if (len != 0) std::memcpy(exact.get(), bytes.data(), len);
  return decode(exact.get(), len, out, consumed);
}

decode_status decode_req(const std::vector<std::uint8_t>& bytes,
                         request& out, std::size_t& consumed) {
  return decode_exact(bytes, try_decode_request, out, consumed);
}

decode_status decode_resp(const std::vector<std::uint8_t>& bytes,
                          response& out, std::size_t& consumed) {
  return decode_exact(bytes, try_decode_response, out, consumed);
}

void expect_request_eq(const request& a, const request& b) {
  EXPECT_EQ(a.op, b.op);
  EXPECT_EQ(a.id, b.id);
  switch (a.op) {
    case opcode::get:
    case opcode::insert:
    case opcode::erase: EXPECT_EQ(a.key, b.key); break;
    case opcode::batch:
      EXPECT_EQ(a.batch_op, b.batch_op);
      EXPECT_EQ(a.keys, b.keys);
      break;
    case opcode::range_scan:
      EXPECT_EQ(a.lo, b.lo);
      EXPECT_EQ(a.hi, b.hi);
      EXPECT_EQ(a.max_items, b.max_items);
      break;
    case opcode::ping: break;
    case opcode::stat: EXPECT_EQ(a.stat_flags, b.stat_flags); break;
  }
}

void expect_response_eq(const response& a, const response& b) {
  EXPECT_EQ(a.op, b.op);
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.status, b.status);
  if (a.status != status_code::ok) return;
  switch (a.op) {
    case opcode::get:
    case opcode::insert:
    case opcode::erase: EXPECT_EQ(a.result, b.result); break;
    case opcode::batch: EXPECT_EQ(a.results, b.results); break;
    case opcode::range_scan:
      EXPECT_EQ(a.truncated, b.truncated);
      EXPECT_EQ(a.resume_key, b.resume_key);
      EXPECT_EQ(a.keys, b.keys);
      break;
    case opcode::ping: break;
    case opcode::stat: EXPECT_EQ(a.stat, b.stat); break;
  }
}

stat_result sample_stat() {
  stat_result s;
  s.now_ns = 0x1111111111111111ULL;
  s.window_ns = 100'000'000;
  s.windows_published = 42;
  s.window_ops = 9001;
  s.lat_p50_ns = 800;
  s.lat_p99_ns = 12'000;
  s.seek_p50 = 14;
  s.seek_p99 = 31;
  s.flight_dumped = true;
  s.counters = {1, 2, 3, 0, UINT64_MAX};
  s.shard_ops = {100, 200, 300};
  s.shard_window_ops = {10, 20, 30};
  return s;
}

// --- round trips -----------------------------------------------------

TEST(Codec, RoundTripPointRequests) {
  for (const opcode op : {opcode::get, opcode::insert, opcode::erase}) {
    request req;
    req.op = op;
    req.id = 0xDEADBEEFCAFEF00DULL;
    req.key = -123456789;
    const auto bytes = encode(req);
    request back;
    std::size_t consumed = 0;
    ASSERT_EQ(decode_req(bytes, back, consumed), decode_status::ok);
    EXPECT_EQ(consumed, bytes.size());
    expect_request_eq(req, back);
  }
}

TEST(Codec, RoundTripBatchRequest) {
  for (const opcode sub : {opcode::get, opcode::insert, opcode::erase}) {
    request req;
    req.op = opcode::batch;
    req.id = 7;
    req.batch_op = sub;
    req.keys = {INT64_MIN, -1, 0, 1, INT64_MAX};
    const auto bytes = encode(req);
    request back;
    std::size_t consumed = 0;
    ASSERT_EQ(decode_req(bytes, back, consumed), decode_status::ok);
    EXPECT_EQ(consumed, bytes.size());
    expect_request_eq(req, back);
  }
}

TEST(Codec, RoundTripEmptyBatch) {
  request req;
  req.op = opcode::batch;
  req.id = 1;
  req.batch_op = opcode::get;
  const auto bytes = encode(req);
  request back;
  std::size_t consumed = 0;
  ASSERT_EQ(decode_req(bytes, back, consumed), decode_status::ok);
  EXPECT_TRUE(back.keys.empty());
}

TEST(Codec, RoundTripRangeScanRequestAndPing) {
  request scan;
  scan.op = opcode::range_scan;
  scan.id = 99;
  scan.lo = INT64_MIN;
  scan.hi = INT64_MAX;
  scan.max_items = max_scan_items;
  request ping;
  ping.op = opcode::ping;
  ping.id = 100;
  for (const request& req : {scan, ping}) {
    const auto bytes = encode(req);
    request back;
    std::size_t consumed = 0;
    ASSERT_EQ(decode_req(bytes, back, consumed), decode_status::ok);
    EXPECT_EQ(consumed, bytes.size());
    expect_request_eq(req, back);
  }
}

TEST(Codec, RoundTripStatRequestBothFlagSettings) {
  for (const std::uint32_t flags : {0u, stat_flag_flight_dump}) {
    request req;
    req.op = opcode::stat;
    req.id = 0xFEEDFACE;
    req.stat_flags = flags;
    const auto bytes = encode(req);
    request back;
    std::size_t consumed = 0;
    ASSERT_EQ(decode_req(bytes, back, consumed), decode_status::ok);
    EXPECT_EQ(consumed, bytes.size());
    expect_request_eq(req, back);
  }
}

TEST(Codec, RoundTripStatResponsePayload) {
  response resp;
  resp.op = opcode::stat;
  resp.id = 404;
  resp.status = status_code::ok;
  resp.stat = sample_stat();
  const auto bytes = encode(resp);
  response back;
  std::size_t consumed = 0;
  ASSERT_EQ(decode_resp(bytes, back, consumed), decode_status::ok);
  EXPECT_EQ(consumed, bytes.size());
  expect_response_eq(resp, back);

  // Empty vectors are representable too (a server with no windows yet).
  resp.stat = stat_result{};
  const auto empty_bytes = encode(resp);
  ASSERT_EQ(decode_resp(empty_bytes, back, consumed), decode_status::ok);
  expect_response_eq(resp, back);
}

TEST(Codec, RoundTripResponsesAllOpcodesAllStatuses) {
  for (const opcode op : {opcode::get, opcode::insert, opcode::erase,
                          opcode::batch, opcode::range_scan, opcode::ping,
                          opcode::stat}) {
    for (const status_code st :
         {status_code::ok, status_code::malformed, status_code::too_large,
          status_code::shutting_down}) {
      response resp;
      resp.op = op;
      resp.id = 0x0123456789ABCDEFULL;
      resp.status = st;
      resp.result = true;
      resp.results = {1, 0, 1};
      resp.truncated = true;
      resp.resume_key = -42;
      resp.keys = {-3, 5, 7};
      resp.stat = sample_stat();
      const auto bytes = encode(resp);
      response back;
      std::size_t consumed = 0;
      ASSERT_EQ(decode_resp(bytes, back, consumed), decode_status::ok)
          << opcode_name(op) << " status " << static_cast<int>(st);
      EXPECT_EQ(consumed, bytes.size());
      expect_response_eq(resp, back);
      if (st != status_code::ok) {
        // NACKs carry no payload: header-only body (op + id + status).
        EXPECT_EQ(bytes.size(), 4u + 1 + 8 + 1);
      }
    }
  }
}

// --- incremental decoding -------------------------------------------

TEST(Codec, EveryStrictPrefixNeedsMore) {
  request req;
  req.op = opcode::batch;
  req.id = 31337;
  req.batch_op = opcode::insert;
  req.keys = {1, 2, 3, 4, 5, 6, 7};
  const auto bytes = encode(req);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(bytes.begin(),
                                           bytes.begin() + cut);
    request back;
    std::size_t consumed = 0;
    EXPECT_EQ(decode_req(prefix, back, consumed), decode_status::need_more)
        << "prefix length " << cut;
  }
}

TEST(Codec, DecodesOneFrameAtATimeFromAConcatenatedStream) {
  std::vector<std::uint8_t> stream;
  std::vector<request> sent;
  for (int i = 0; i < 5; ++i) {
    request req;
    req.op = i % 2 == 0 ? opcode::insert : opcode::get;
    req.id = static_cast<std::uint64_t>(i);
    req.key = i * 1000;
    encode_request(stream, req);
    sent.push_back(req);
  }
  std::size_t pos = 0;
  for (const request& expected : sent) {
    request back;
    std::size_t consumed = 0;
    ASSERT_EQ(try_decode_request(stream.data() + pos, stream.size() - pos,
                                 back, consumed),
              decode_status::ok);
    expect_request_eq(expected, back);
    pos += consumed;
  }
  EXPECT_EQ(pos, stream.size());
}

// --- malformed inputs ------------------------------------------------

TEST(Codec, RejectsZeroAndOversizedBodyLengths) {
  request back;
  std::size_t consumed = 0;
  const std::vector<std::uint8_t> zero = {0, 0, 0, 0};
  EXPECT_EQ(decode_req(zero, back, consumed), decode_status::bad_frame);
  std::vector<std::uint8_t> huge;
  wire::put_u32(huge, static_cast<std::uint32_t>(max_frame_bytes + 1));
  // The oversized length must be rejected *before* the body arrives —
  // a server that waited for max_frame_bytes+1 bytes could be ballooned.
  EXPECT_EQ(decode_req(huge, back, consumed), decode_status::bad_frame);
}

TEST(Codec, RejectsUnknownOpcodeAndBadBatchSubOp) {
  request req;
  req.op = opcode::ping;
  req.id = 5;
  auto bytes = encode(req);
  bytes[4] = 0;  // opcode byte below the valid range
  request back;
  std::size_t consumed = 0;
  EXPECT_EQ(decode_req(bytes, back, consumed), decode_status::bad_frame);
  bytes[4] = 200;  // above the valid range
  EXPECT_EQ(decode_req(bytes, back, consumed), decode_status::bad_frame);

  request batch;
  batch.op = opcode::batch;
  batch.id = 6;
  batch.batch_op = opcode::get;
  batch.keys = {1};
  auto bb = encode(batch);
  bb[4 + 1 + 8] = static_cast<std::uint8_t>(opcode::batch);  // sub_op
  EXPECT_EQ(decode_req(bb, back, consumed), decode_status::bad_frame);
}

TEST(Codec, RejectsTrailingAndMissingPayloadBytes) {
  request req;
  req.op = opcode::get;
  req.id = 9;
  req.key = 1234;
  auto bytes = encode(req);
  // One trailing byte inside the declared body.
  bytes.push_back(0xAB);
  bytes[0] += 1;  // body_len grows with it
  request back;
  std::size_t consumed = 0;
  EXPECT_EQ(decode_req(bytes, back, consumed), decode_status::bad_frame);
  // One payload byte short (declared body shrinks; the bytes exist in
  // the buffer, so this is a strictness failure, not need_more).
  auto short_bytes = encode(req);
  short_bytes[0] -= 1;
  short_bytes.pop_back();
  EXPECT_EQ(decode_req(short_bytes, back, consumed),
            decode_status::bad_frame);
}

TEST(Codec, RejectsBatchCountDisagreeingWithBody) {
  request req;
  req.op = opcode::batch;
  req.id = 10;
  req.batch_op = opcode::erase;
  req.keys = {1, 2, 3};
  auto bytes = encode(req);
  // count sits after len(4) + op(1) + id(8) + sub_op(1).
  bytes[4 + 1 + 8 + 1] = 200;  // claims 200 keys, body holds 3
  request back;
  std::size_t consumed = 0;
  EXPECT_EQ(decode_req(bytes, back, consumed), decode_status::bad_frame);
}

TEST(Codec, RejectsOverlongBatchCountBeforeAllocating) {
  // A frame that *claims* max_batch_keys+1 keys must die on the count
  // check, not attempt a resize of the keys vector.
  std::vector<std::uint8_t> bytes;
  const std::size_t frame = detail::begin_frame(bytes);
  wire::put_u8(bytes, static_cast<std::uint8_t>(opcode::batch));
  wire::put_u64(bytes, 11);
  wire::put_u8(bytes, static_cast<std::uint8_t>(opcode::get));
  wire::put_u32(bytes, max_batch_keys + 1);
  detail::end_frame(bytes, frame);
  request back;
  std::size_t consumed = 0;
  EXPECT_EQ(decode_req(bytes, back, consumed), decode_status::bad_frame);
}

TEST(Codec, RejectsResponseWithUnknownStatus) {
  response resp;
  resp.op = opcode::ping;
  resp.id = 3;
  auto bytes = encode(resp);
  bytes[4 + 1 + 8] = 99;  // status byte
  response back;
  std::size_t consumed = 0;
  EXPECT_EQ(decode_resp(bytes, back, consumed), decode_status::bad_frame);
}

TEST(Codec, RejectsStatRequestWithUnknownFlagBits) {
  request req;
  req.op = opcode::stat;
  req.id = 12;
  req.stat_flags = stat_flag_flight_dump;
  auto bytes = encode(req);
  request back;
  std::size_t consumed = 0;
  ASSERT_EQ(decode_req(bytes, back, consumed), decode_status::ok);
  // flags u32 sits after len(4) + op(1) + id(8); set a reserved bit.
  bytes[4 + 1 + 8] |= 0x02;
  EXPECT_EQ(decode_req(bytes, back, consumed), decode_status::bad_frame);
  auto high = encode(req);
  high[4 + 1 + 8 + 3] = 0x80;  // top byte of the flags word
  EXPECT_EQ(decode_req(high, back, consumed), decode_status::bad_frame);
}

TEST(Codec, RejectsStatResponseWithWrongVersion) {
  response resp;
  resp.op = opcode::stat;
  resp.id = 13;
  resp.status = status_code::ok;
  resp.stat = sample_stat();
  response back;
  std::size_t consumed = 0;
  // version byte sits after len(4) + op(1) + id(8) + status(1).
  for (const std::uint8_t v : {std::uint8_t{0}, std::uint8_t{2},
                               std::uint8_t{99}}) {
    auto bytes = encode(resp);
    bytes[4 + 1 + 8 + 1] = v;
    EXPECT_EQ(decode_resp(bytes, back, consumed), decode_status::bad_frame)
        << "version " << static_cast<int>(v);
  }
}

TEST(Codec, RejectsStatResponseWithNonCanonicalBool) {
  response resp;
  resp.op = opcode::stat;
  resp.id = 14;
  resp.status = status_code::ok;
  resp.stat = sample_stat();
  auto bytes = encode(resp);
  // flight_dumped follows version(1) and the eight u64 gauges.
  const std::size_t dumped_at = 4 + 1 + 8 + 1 + 1 + 8 * 8;
  ASSERT_EQ(bytes[dumped_at], 1u);  // sample_stat sets it
  bytes[dumped_at] = 2;
  response back;
  std::size_t consumed = 0;
  EXPECT_EQ(decode_resp(bytes, back, consumed), decode_status::bad_frame);
}

TEST(Codec, RejectsStatResponseCountsDisagreeingWithBody) {
  response resp;
  resp.op = opcode::stat;
  resp.id = 15;
  resp.status = status_code::ok;
  resp.stat = sample_stat();
  response back;
  std::size_t consumed = 0;

  // n_counters claims more entries than the body carries (261 > the
  // max_stat_counters cap of 256, so the count check fires first).
  auto bytes = encode(resp);
  const std::size_t counters_at = 4 + 1 + 8 + 1 + 1 + 8 * 8 + 1;
  ASSERT_EQ(bytes[counters_at], resp.stat.counters.size());
  bytes[counters_at + 1] = 0x01;  // little-endian u32: +256
  EXPECT_EQ(decode_resp(bytes, back, consumed), decode_status::bad_frame);

  // Shard arrays are a count followed by two same-length u64 runs;
  // chop one trailing element so remaining() != n_shards * 16.
  auto chopped = encode(resp);
  ASSERT_GE(chopped[0], 8u);  // body_len low byte survives the subtract
  chopped.resize(chopped.size() - 8);
  chopped[0] -= 8;
  EXPECT_EQ(decode_resp(chopped, back, consumed), decode_status::bad_frame);
}

// --- structure-aware fuzzing ----------------------------------------

request random_request(pcg32& rng) {
  request req;
  req.op = static_cast<opcode>(1 + rng.bounded(7));
  req.id = rng.next64();
  req.key = static_cast<std::int64_t>(rng.next64());
  if (req.op == opcode::batch) {
    req.batch_op = static_cast<opcode>(1 + rng.bounded(3));
    req.keys.resize(rng.bounded(33));
    for (auto& k : req.keys) k = static_cast<std::int64_t>(rng.next64());
  }
  if (req.op == opcode::range_scan) {
    req.lo = static_cast<std::int64_t>(rng.next64());
    req.hi = static_cast<std::int64_t>(rng.next64());
    req.max_items = rng.bounded(max_scan_items + 1);
  }
  if (req.op == opcode::stat) req.stat_flags = rng.bounded(2);
  return req;
}

response random_response(pcg32& rng) {
  response resp;
  resp.op = static_cast<opcode>(1 + rng.bounded(7));
  resp.id = rng.next64();
  resp.status = static_cast<status_code>(rng.bounded(4));
  resp.result = rng.bounded(2) != 0;
  resp.results.resize(rng.bounded(33));
  for (auto& r : resp.results) r = static_cast<std::uint8_t>(rng.bounded(2));
  resp.truncated = rng.bounded(2) != 0;
  resp.resume_key = static_cast<std::int64_t>(rng.next64());
  resp.keys.resize(rng.bounded(33));
  for (auto& k : resp.keys) k = static_cast<std::int64_t>(rng.next64());
  if (resp.op == opcode::stat) {
    resp.stat.now_ns = rng.next64();
    resp.stat.window_ns = rng.next64();
    resp.stat.windows_published = rng.next64();
    resp.stat.window_ops = rng.next64();
    resp.stat.lat_p50_ns = rng.next64();
    resp.stat.lat_p99_ns = rng.next64();
    resp.stat.seek_p50 = rng.next64();
    resp.stat.seek_p99 = rng.next64();
    resp.stat.flight_dumped = rng.bounded(2) != 0;
    resp.stat.counters.resize(rng.bounded(17));
    for (auto& c : resp.stat.counters) c = rng.next64();
    // The wire writes one shard count followed by both arrays: they must
    // be the same length for the frame to be well-formed.
    const std::uint32_t shards = rng.bounded(9);
    resp.stat.shard_ops.resize(shards);
    resp.stat.shard_window_ops.resize(shards);
    for (auto& s : resp.stat.shard_ops) s = rng.next64();
    for (auto& s : resp.stat.shard_window_ops) s = rng.next64();
  }
  return resp;
}

/// The fuzz invariant: whatever the bytes, decoding must not crash or
/// over-read (ASan via the exact-sized heap span), must consume at most
/// what it was given, and an accepted frame must re-encode to exactly
/// the consumed bytes (decode ∘ encode = identity on the accepted set —
/// a decoder that "repairs" malformed input would fail this).
template <typename Frame, typename Decoder, typename Encoder>
void fuzz_one(const std::vector<std::uint8_t>& bytes, Decoder&& decode,
              Encoder&& encode_fn) {
  Frame out;
  std::size_t consumed = 0;
  const decode_status st = decode_exact(bytes, decode, out, consumed);
  if (st != decode_status::ok) return;
  ASSERT_LE(consumed, bytes.size());
  std::vector<std::uint8_t> again;
  encode_fn(again, out);
  ASSERT_EQ(again.size(), consumed);
  ASSERT_EQ(0, std::memcmp(again.data(), bytes.data(), consumed));
}

TEST(CodecFuzz, MutatedRequestsNeverCrashOrMisdecode) {
  pcg32 rng(0xF00DF00DULL);
  for (int iter = 0; iter < 4000; ++iter) {
    auto bytes = encode(random_request(rng));
    const std::uint32_t mutations = 1 + rng.bounded(4);
    for (std::uint32_t m = 0; m < mutations; ++m) {
      if (bytes.empty()) break;
      switch (rng.bounded(4)) {
        case 0:  // flip a byte
          bytes[rng.bounded(static_cast<std::uint32_t>(bytes.size()))] ^=
              static_cast<std::uint8_t>(1 + rng.bounded(255));
          break;
        case 1:  // truncate
          bytes.resize(rng.bounded(
              static_cast<std::uint32_t>(bytes.size()) + 1));
          break;
        case 2:  // append garbage
          for (std::uint32_t i = rng.bounded(9); i > 0; --i) {
            bytes.push_back(static_cast<std::uint8_t>(rng.bounded(256)));
          }
          break;
        case 3:  // splice the length prefix
          if (bytes.size() >= 4) {
            bytes[rng.bounded(4)] ^=
                static_cast<std::uint8_t>(1 + rng.bounded(255));
          }
          break;
      }
    }
    fuzz_one<request>(bytes, try_decode_request, encode_request);
  }
}

TEST(CodecFuzz, MutatedResponsesNeverCrashOrMisdecode) {
  pcg32 rng(0xBEEFBEEFULL);
  for (int iter = 0; iter < 4000; ++iter) {
    auto bytes = encode(random_response(rng));
    bytes[rng.bounded(static_cast<std::uint32_t>(bytes.size()))] ^=
        static_cast<std::uint8_t>(1 + rng.bounded(255));
    fuzz_one<response>(bytes, try_decode_response, encode_response);
  }
}

TEST(CodecFuzz, PureGarbageNeverCrashes) {
  pcg32 rng(0xA5A5A5A5ULL);
  for (int iter = 0; iter < 4000; ++iter) {
    std::vector<std::uint8_t> bytes(rng.bounded(96));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.bounded(256));
    fuzz_one<request>(bytes, try_decode_request, encode_request);
    fuzz_one<response>(bytes, try_decode_response, encode_response);
  }
}

TEST(CodecFuzz, SplitAtEveryByteDecodesIdentically) {
  // Feed a multi-frame stream split at every byte boundary: the decoder
  // must answer need_more on the partial half and produce the same
  // frames once the rest arrives — no state hides inside the codec.
  pcg32 rng(0x5EED5EEDULL);
  std::vector<std::uint8_t> stream;
  std::vector<request> sent;
  for (int i = 0; i < 6; ++i) {
    const request req = random_request(rng);
    encode_request(stream, req);
    sent.push_back(req);
  }
  for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
    std::vector<std::uint8_t> buffer(stream.begin(), stream.begin() + cut);
    std::size_t pos = 0, frames = 0;
    auto drain = [&] {
      for (;;) {
        request back;
        std::size_t consumed = 0;
        const decode_status st = try_decode_request(
            buffer.data() + pos, buffer.size() - pos, back, consumed);
        if (st != decode_status::ok) {
          ASSERT_EQ(st, decode_status::need_more);
          return;
        }
        ASSERT_LT(frames, sent.size());
        expect_request_eq(sent[frames], back);
        pos += consumed;
        ++frames;
      }
    };
    drain();
    buffer.insert(buffer.end(), stream.begin() + cut, stream.end());
    drain();
    EXPECT_EQ(frames, sent.size()) << "split at " << cut;
    EXPECT_EQ(pos, stream.size());
  }
}

}  // namespace
}  // namespace lfbst::server
