// Fault injection against the TCP server: mid-request disconnects,
// half-written frames at close, RST teardowns, malformed framing,
// backpressure saturation from a slow reader, and graceful drain under
// load. The invariants under attack are always the same — the event
// loop never wedges (every join completes within a deadline), no
// connection leaks (accepted == closed after quiescence), a misbehaving
// connection harms only itself, and the set underneath keeps recording
// sane merged counters.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/natarajan_tree.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "shard/sharded_set.hpp"

namespace lfbst::server {
namespace {

using tree_type = nm_tree<std::int64_t, std::less<std::int64_t>,
                          reclaim::epoch, obs::recording>;
using set_type = shard::sharded_set<tree_type>;

constexpr std::int64_t kKeyRange = 1 << 14;

/// Polls `cond` until it holds or the deadline passes. The fault tests
/// assert liveness, so every wait is bounded.
template <typename Cond>
[[nodiscard]] bool eventually(Cond&& cond, int deadline_ms = 10'000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  while (!cond()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

/// join() bounded by a watchdog: a wedged event loop fails the test
/// instead of hanging the suite until the ctest TIMEOUT kill.
template <typename Set>
[[nodiscard]] bool join_within(basic_server<Set>& server, int deadline_ms) {
  std::atomic<bool> joined{false};
  std::thread joiner([&] {
    server.join();
    joined.store(true, std::memory_order_release);
  });
  const bool ok = eventually(
      [&] { return joined.load(std::memory_order_acquire); }, deadline_ms);
  if (!ok) server.stop();  // unwedge so the joiner thread can finish
  joiner.join();
  return ok;
}

TEST(ServerFault, MidRequestDisconnectsDoNotLeakOrWedge) {
  set_type set(8, 0, kKeyRange);
  basic_server<set_type> server(set, {.event_threads = 2});
  ASSERT_TRUE(server.start());
  constexpr unsigned kConns = 48;
  request req;
  req.op = opcode::insert;
  req.id = 1;
  req.key = 77;
  std::vector<std::uint8_t> frame;
  encode_request(frame, req);
  for (unsigned i = 0; i < kConns; ++i) {
    client c;
    ASSERT_TRUE(c.connect("127.0.0.1", server.port()));
    switch (i % 4) {
      case 0:  // nothing at all — connect and vanish
        break;
      case 1:  // half a length prefix
        ASSERT_TRUE(c.send_raw(frame.data(), 2));
        break;
      case 2:  // full prefix, half a body
        ASSERT_TRUE(c.send_raw(frame.data(), frame.size() - 5));
        break;
      default: {  // one complete frame plus a torn second one
        ASSERT_TRUE(c.send_raw(frame.data(), frame.size()));
        response resp;  // consume the response so the close is a clean
        ASSERT_TRUE(c.recv_response(resp));  // FIN, not an RST that could
        EXPECT_EQ(resp.op, opcode::insert);  // discard the insert
        ASSERT_TRUE(c.send_raw(frame.data(), 7));
        break;
      }
    }
    c.close();  // abrupt, mid-frame for cases 1-3
  }
  // Every connection must be reaped without any drain being requested.
  ASSERT_TRUE(eventually([&] {
    return server.stats().connections_accepted.load() == kConns &&
           server.stats().connections_closed.load() == kConns;
  })) << "leaked connections: accepted "
      << server.stats().connections_accepted.load() << ", closed "
      << server.stats().connections_closed.load();
  // A torn frame is not a protocol error — just an unfinished one.
  EXPECT_EQ(server.stats().protocol_errors.load(), 0u);
  // The loop is still alive and serving.
  client probe;
  ASSERT_TRUE(probe.connect("127.0.0.1", server.port()));
  bool present = false;
  ASSERT_TRUE(probe.get(77, present));
  EXPECT_TRUE(present);  // the complete frames did execute
  probe.close();
  server.stop();
  ASSERT_TRUE(join_within(server, 10'000));
  EXPECT_EQ(server.stats().connections_accepted.load(),
            server.stats().connections_closed.load());
}

TEST(ServerFault, MalformedFrameGetsNackedThenClosed) {
  set_type set(8, 0, kKeyRange);
  basic_server<set_type> server(set, {.event_threads = 1});
  ASSERT_TRUE(server.start());
  client c;
  ASSERT_TRUE(c.connect("127.0.0.1", server.port()));
  // A well-formed request first: its response must arrive before the
  // NACK (responses never overtake each other on one connection).
  bool inserted = false;
  ASSERT_TRUE(c.insert(5, inserted));
  request good;
  good.op = opcode::get;
  good.id = 1000;
  good.key = 5;
  ASSERT_TRUE(c.send_request(good));
  std::vector<std::uint8_t> bad;
  const std::size_t frame = detail::begin_frame(bad);
  wire::put_u8(bad, 99);  // unknown opcode
  wire::put_u64(bad, 2000);
  detail::end_frame(bad, frame);
  ASSERT_TRUE(c.send_raw(bad.data(), bad.size()));
  response resp;
  ASSERT_TRUE(c.recv_response(resp));
  EXPECT_EQ(resp.id, 1000u);
  EXPECT_EQ(resp.status, status_code::ok);
  EXPECT_TRUE(resp.result);
  ASSERT_TRUE(c.recv_response(resp));
  EXPECT_EQ(resp.status, status_code::malformed);
  EXPECT_EQ(resp.id, 2000u);  // id salvaged from the bad frame's prefix
  EXPECT_FALSE(c.recv_response(resp));  // then the stream is closed
  EXPECT_EQ(server.stats().protocol_errors.load(), 1u);
  ASSERT_TRUE(eventually([&] {
    return server.stats().connections_closed.load() == 1u;
  }));
  server.stop();
  ASSERT_TRUE(join_within(server, 10'000));
}

TEST(ServerFault, SlowReaderHitsBackpressureWithoutStallingOthers) {
  set_type set(8, 0, kKeyRange);
  server_config cfg;
  cfg.event_threads = 1;  // same loop serves both clients: the stronger claim
  cfg.write_buffer_cap = 64 * 1024;
  cfg.write_buffer_resume = 16 * 1024;
  ASSERT_LT(cfg.write_buffer_cap, static_cast<std::size_t>(500) * 8 * 1024);
  basic_server<set_type> server(set, cfg);
  ASSERT_TRUE(server.start());

  {  // ~1024 keys so every scan response is ~8 KiB
    client seed;
    ASSERT_TRUE(seed.connect("127.0.0.1", server.port()));
    std::vector<std::int64_t> keys;
    for (std::int64_t k = 0; k < kKeyRange; k += 16) keys.push_back(k);
    std::vector<bool> results;
    ASSERT_TRUE(seed.batch(opcode::insert, keys, results));
  }

  client slow;
  ASSERT_TRUE(slow.connect("127.0.0.1", server.port()));
  constexpr int kScans = 500;
  for (int i = 0; i < kScans; ++i) {
    request req;
    req.op = opcode::range_scan;
    req.id = static_cast<std::uint64_t>(i);
    req.lo = 0;
    req.hi = kKeyRange;
    req.max_items = max_scan_items;
    ASSERT_TRUE(slow.send_request(req));  // ...and never read
  }
  // The server must stop reading/serving this connection once its write
  // buffer crosses the cap instead of buffering ~4 MB of responses.
  ASSERT_TRUE(eventually([&] {
    return server.stats().backpressure_pauses.load() > 0;
  })) << "slow reader never tripped backpressure";

  // A well-behaved client on the SAME event loop stays fully served
  // while the slow one is saturated.
  client nimble;
  ASSERT_TRUE(nimble.connect("127.0.0.1", server.port()));
  for (int i = 0; i < 50; ++i) {
    bool r = false;
    ASSERT_TRUE(nimble.insert(1 + 16 * i + 8, r)) << "iteration " << i;
  }
  nimble.close();

  // Now drain the slow connection: every response arrives, in order,
  // each the full sorted page.
  slow.set_recv_timeout_ms(60'000);
  for (int i = 0; i < kScans; ++i) {
    response resp;
    ASSERT_TRUE(slow.recv_response(resp)) << "response " << i;
    ASSERT_EQ(resp.id, static_cast<std::uint64_t>(i));
    ASSERT_EQ(resp.status, status_code::ok);
    ASSERT_GE(resp.keys.size(), 1024u);
    ASSERT_FALSE(resp.truncated);
  }
  slow.close();
  server.stop();
  ASSERT_TRUE(join_within(server, 10'000));
  EXPECT_GT(server.stats().backpressure_pauses.load(), 0u);
  EXPECT_EQ(server.stats().connections_accepted.load(),
            server.stats().connections_closed.load());
}

TEST(ServerFault, GracefulDrainUnderLoadAnswersOrNacksEverything) {
  set_type set(8, 0, kKeyRange);
  server_config cfg;
  cfg.event_threads = 2;
  cfg.drain_deadline_ms = 5000;
  basic_server<set_type> server(set, cfg);
  ASSERT_TRUE(server.start());

  constexpr int kClients = 4;
  std::atomic<int> failures{0};
  std::atomic<std::uint64_t> answered{0};
  std::atomic<std::uint64_t> nacked{0};
  std::vector<std::thread> threads;
  std::atomic<bool> drain_now{false};
  threads.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      client c;
      if (!c.connect("127.0.0.1", server.port())) {
        ++failures;
        return;
      }
      pcg32 rng = pcg32::for_thread(5, static_cast<unsigned>(t));
      std::uint64_t sent = 0;
      // Pipeline writes in bursts until the drain flag rises, then
      // half-close and read the tail.
      while (!drain_now.load(std::memory_order_acquire)) {
        for (int burst = 0; burst < 32; ++burst) {
          request req;
          req.op = static_cast<opcode>(1 + rng.bounded(3));
          req.id = sent;
          req.key = rng.bounded(static_cast<std::uint32_t>(kKeyRange));
          if (!c.send_request(req)) {
            // The server may already have closed the socket mid-drain;
            // that is a legal outcome, not a failure.
            c.shutdown_send();
            goto read_tail;
          }
          ++sent;
        }
        // Read a few to keep the pipe moving (but stay behind).
        for (int burst = 0; burst < 16; ++burst) {
          response resp;
          if (!c.recv_response(resp)) {
            ++failures;  // before the drain, responses must flow
            return;
          }
          ++answered;
        }
      }
      c.shutdown_send();
    read_tail:
      // Every remaining response is either ok or shutting_down, ids
      // strictly in send order; then clean EOF. Nothing hangs.
      for (;;) {
        response resp;
        if (!c.recv_response(resp)) break;  // EOF (or deadline close)
        if (resp.status == status_code::ok) {
          ++answered;
        } else if (resp.status == status_code::shutting_down) {
          ++nacked;
        } else {
          ++failures;
        }
      }
    });
  }

  // Let the load build, then drain mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  drain_now.store(true, std::memory_order_release);
  server.begin_drain();
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(join_within(server, 15'000)) << "drain wedged the loop";
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            10'000);
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(answered.load(), 0u);
  // After join, accounting is quiescent and exact.
  const auto& st = server.stats();
  EXPECT_EQ(st.connections_accepted.load(), st.connections_closed.load());
  EXPECT_EQ(st.frames_in.load() + st.rejected_shutting_down.load() +
                st.protocol_errors.load(),
            st.responses_out.load());
  // The post-drain listener is really closed.
  client late;
  EXPECT_FALSE(late.connect("127.0.0.1", server.port()) && late.ping());
  // merged_counters sees the applied load (frames admitted -> tree ops).
  const auto counters = set.merged_counters();
  EXPECT_GT(counters[obs::counter::ops_search] +
                counters[obs::counter::ops_insert] +
                counters[obs::counter::ops_erase],
            0u);
}

TEST(ServerFault, HardStopClosesEverythingImmediately) {
  set_type set(8, 0, kKeyRange);
  basic_server<set_type> server(set, {.event_threads = 3});
  ASSERT_TRUE(server.start());
  std::vector<client> clients(8);
  for (auto& c : clients) {
    ASSERT_TRUE(c.connect("127.0.0.1", server.port()));
    ASSERT_TRUE(c.ping());
  }
  server.stop();
  ASSERT_TRUE(join_within(server, 10'000));
  EXPECT_EQ(server.stats().connections_accepted.load(), 8u);
  EXPECT_EQ(server.stats().connections_closed.load(), 8u);
  // Clients observe EOF, not a hang.
  for (auto& c : clients) {
    response resp;
    EXPECT_FALSE(c.recv_response(resp));
  }
}

TEST(ServerFault, DrainOnAnIdleServerTerminatesPromptly) {
  set_type set(8, 0, kKeyRange);
  basic_server<set_type> server(set, {});
  ASSERT_TRUE(server.start());
  server.begin_drain();
  ASSERT_TRUE(join_within(server, 5'000));
  EXPECT_EQ(server.stats().connections_accepted.load(), 0u);
}

}  // namespace
}  // namespace lfbst::server
