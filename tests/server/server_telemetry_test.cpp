// End-to-end telemetry over the wire: an in-process basic_server wired
// exactly like lfbst_serve (stat handler, heatmap, flight recorder,
// sampler, exposition endpoint), driven by real clients. Pins the
// acceptance shape of ISSUE 7: two stat scrapes under load show
// strictly increasing counters and correctly sized shard arrays, the
// Prometheus text carries the family set and moves between scrapes,
// the stat dump flag produces a Perfetto file, and ping_rtt reports a
// plausible microsecond RTT.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <numeric>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/natarajan_tree.hpp"
#include "obs/heatmap.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "server/stat_endpoint.hpp"
#include "shard/sharded_set.hpp"

namespace lfbst::server {
namespace {

using tree_type = nm_tree<std::int64_t, std::less<std::int64_t>,
                          reclaim::epoch, obs::recording>;
using set_type = shard::sharded_set<tree_type>;

/// The serve_main wiring, minus flags and signal handlers: everything a
/// telemetry test needs, torn down in reverse order.
struct telemetry_server {
  static constexpr std::size_t shards = 4;

  set_type set;
  obs::key_heatmap heatmap;
  obs::trace_log flight_log;
  obs::sampler<set_type> sampler;
  basic_server<set_type> server;

  explicit telemetry_server(obs::telemetry_options topts = make_opts())
      : set(shards, std::numeric_limits<std::int64_t>::min(),
            std::numeric_limits<std::int64_t>::max()),
        heatmap(0, std::int64_t{1} << 20),
        flight_log(1 << 12),
        sampler(set, std::move(topts)),
        server(set, config()) {
    set.for_each_shard_stats([&](obs::recording& stats) {
      stats.attach_heatmap(&heatmap);
      stats.attach_trace(&flight_log);
    });
    sampler.attach_flight_recorder(&flight_log);
    sampler.attach_heatmap(&heatmap);
    server.set_stat_handler([this](std::uint32_t flags, stat_result& out) {
      fill_stat(flags, out);
    });
  }

  ~telemetry_server() {
    server.stop();
    server.join();
    sampler.stop();
  }

  [[nodiscard]] bool start() { return server.start(); }
  [[nodiscard]] std::uint16_t port() const noexcept { return server.port(); }

  static obs::telemetry_options make_opts() {
    obs::telemetry_options topts;
    topts.interval_ms = 10;
    topts.flight_path =
        ::testing::TempDir() + "server_telemetry_flight.json";
    topts.flight_window_ms = 60'000;
    return topts;
  }

  static server_config config() {
    server_config cfg;
    cfg.port = 0;  // ephemeral
    cfg.event_threads = 2;
    return cfg;
  }

  // Mirrors lfbst_serve's stat handler verbatim.
  void fill_stat(std::uint32_t request_flags, stat_result& out) {
    if ((request_flags & stat_flag_flight_dump) != 0) {
      sampler.request_flight_dump();
      out.flight_dumped = true;
    }
    obs::telemetry_window win;
    if (sampler.latest(win)) {
      out.window_ns = win.t1_ns - win.t0_ns;
      out.window_ops = win.point_ops();
      out.lat_p50_ns = win.lat_p50_ns;
      out.lat_p99_ns = win.lat_p99_ns;
      out.seek_p50 = win.seek_p50;
      out.seek_p99 = win.seek_p99;
      out.shard_window_ops.assign(win.shard_ops.begin(),
                                  win.shard_ops.begin() + win.shard_count);
    }
    out.windows_published = sampler.windows_published();
    obs::metrics_snapshot total;
    out.shard_ops.reserve(set.shard_count());
    for (std::size_t i = 0; i < set.shard_count(); ++i) {
      const obs::metrics_snapshot snap = set.shard_counters(i);
      out.shard_ops.push_back(snap.point_ops());
      total.merge(snap);
    }
    out.shard_window_ops.resize(out.shard_ops.size(), 0);
    out.counters.assign(total.values.begin(), total.values.end());
  }
};

void apply_load(client& cli, std::int64_t base, int ops) {
  for (int i = 0; i < ops; ++i) {
    const std::int64_t key = base + i * 37 % (std::int64_t{1} << 20);
    bool flag = false;
    switch (i % 3) {
      case 0: ASSERT_TRUE(cli.insert(key, flag)); break;
      case 1: ASSERT_TRUE(cli.get(key, flag)); break;
      case 2: ASSERT_TRUE(cli.erase(key, flag)); break;
    }
  }
}

TEST(ServerTelemetry, StatScrapesUnderLoadAreMonotone) {
  telemetry_server ts;
  ASSERT_TRUE(ts.start());
  ts.sampler.start();

  client cli;
  ASSERT_TRUE(cli.connect("127.0.0.1", ts.port()));
  apply_load(cli, 1, 600);

  stat_result first;
  ASSERT_TRUE(cli.stat(first));
  EXPECT_GT(first.now_ns, 0u);
  EXPECT_FALSE(first.flight_dumped);
  ASSERT_EQ(first.shard_ops.size(), telemetry_server::shards);
  ASSERT_EQ(first.shard_window_ops.size(), first.shard_ops.size());
  ASSERT_EQ(first.counters.size(), obs::counter_count);
  const std::uint64_t first_total = std::accumulate(
      first.shard_ops.begin(), first.shard_ops.end(), std::uint64_t{0});
  EXPECT_GE(first_total, 600u);
  // The lifetime counter vector agrees with the per-shard breakdown.
  const std::uint64_t point_ops =
      first.counters[static_cast<std::size_t>(obs::counter::ops_search)] +
      first.counters[static_cast<std::size_t>(obs::counter::ops_insert)] +
      first.counters[static_cast<std::size_t>(obs::counter::ops_erase)];
  EXPECT_EQ(point_ops, first_total);

  apply_load(cli, 50'000, 600);
  stat_result second;
  ASSERT_TRUE(cli.stat(second));
  EXPECT_GE(second.now_ns, first.now_ns);
  EXPECT_GE(second.windows_published, first.windows_published);
  ASSERT_EQ(second.counters.size(), first.counters.size());
  for (std::size_t c = 0; c < first.counters.size(); ++c) {
    EXPECT_GE(second.counters[c], first.counters[c]) << "counter " << c;
  }
  const std::uint64_t second_total = std::accumulate(
      second.shard_ops.begin(), second.shard_ops.end(), std::uint64_t{0});
  EXPECT_GE(second_total, first_total + 600);
  EXPECT_EQ(ts.server.stats().stat_requests.load(), 2u);
}

TEST(ServerTelemetry, PrometheusEndpointServesMovingCounters) {
  telemetry_server ts;
  ASSERT_TRUE(ts.start());
  ts.sampler.start();

  metrics_endpoint exposition([&] {
    obs::prometheus_writer w;
    ts.sampler.render_prometheus(w);
    render_prometheus(w, ts.server.stats());
    return w.text();
  });
  ASSERT_TRUE(exposition.start("127.0.0.1", 0));

  client cli;
  ASSERT_TRUE(cli.connect("127.0.0.1", ts.port()));
  apply_load(cli, 1, 300);

  std::string scrape1;
  ASSERT_TRUE(http_get("127.0.0.1", exposition.port(), "/metrics", scrape1));
  for (const char* needle :
       {"# TYPE lfbst_ops_insert_total counter", "lfbst_shard_ops_total",
        "lfbst_windows_published_total", "lfbst_window_ops",
        "lfbst_shard_share", "lfbst_latency_window_ns",
        "lfbst_heatmap_ops_total", "lfbst_server_frames_in_total",
        "lfbst_server_responses_out_total"}) {
    EXPECT_NE(scrape1.find(needle), std::string::npos) << needle;
  }

  apply_load(cli, 90'000, 300);
  std::string scrape2;
  ASSERT_TRUE(http_get("127.0.0.1", exposition.port(), "/metrics", scrape2));

  // Parse one counter out of each scrape and require strict growth.
  auto read_counter = [](const std::string& text,
                         const std::string& name) -> std::uint64_t {
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind(name + " ", 0) == 0) {
        return std::stoull(line.substr(name.size() + 1));
      }
    }
    return std::uint64_t{0};
  };
  EXPECT_GT(read_counter(scrape2, "lfbst_ops_insert_total"),
            read_counter(scrape1, "lfbst_ops_insert_total"));
  EXPECT_GT(read_counter(scrape2, "lfbst_server_frames_in_total"),
            read_counter(scrape1, "lfbst_server_frames_in_total"));
  EXPECT_EQ(exposition.scrapes(), 2u);

  // Non-metrics paths fail cleanly without wedging the endpoint.
  std::string body;
  EXPECT_FALSE(http_get("127.0.0.1", exposition.port(), "/nope", body));
  exposition.stop();
}

TEST(ServerTelemetry, StatDumpFlagProducesFlightFile) {
  obs::telemetry_options topts = telemetry_server::make_opts();
  topts.flight_path = ::testing::TempDir() + "stat_flag_flight.json";
  std::remove(topts.flight_path.c_str());
  telemetry_server ts(topts);
  ASSERT_TRUE(ts.start());

  client cli;
  ASSERT_TRUE(cli.connect("127.0.0.1", ts.port()));
  apply_load(cli, 1, 300);

  stat_result st;
  ASSERT_TRUE(cli.stat(st, /*request_flight_dump=*/true));
  EXPECT_TRUE(st.flight_dumped);
  // No sampler thread in this test: service the request synchronously
  // so the dump's timing is deterministic.
  ts.sampler.sample_now();
  EXPECT_EQ(ts.sampler.flight_dumps(), 1u);

  std::ifstream in(topts.flight_path);
  ASSERT_TRUE(in.good()) << topts.flight_path;
  std::stringstream contents;
  contents << in.rdbuf();
  const std::string json = contents.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  std::remove(topts.flight_path.c_str());
}

TEST(ServerTelemetry, PingRttReportsPlausibleMicroseconds) {
  telemetry_server ts;
  ASSERT_TRUE(ts.start());
  client cli;
  ASSERT_TRUE(cli.connect("127.0.0.1", ts.port()));
  std::uint64_t rtt_us = 0;
  ASSERT_TRUE(cli.ping_rtt(rtt_us));
  std::uint64_t best_us = 0;
  ASSERT_TRUE(cli.ping_rtt_min(8, best_us));
  // Loopback RTT is far under a second; anything larger means the
  // clock math is wrong, not the network slow. (Zero is fine: the
  // round trip can dip under the microsecond the value is quantized
  // to.)
  EXPECT_LT(rtt_us, 1'000'000u);
  EXPECT_LT(best_us, 1'000'000u);
}

}  // namespace
}  // namespace lfbst::server
