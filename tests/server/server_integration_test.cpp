// Oracle-backed integration tests for the TCP server: an in-process
// basic_server on an ephemeral loopback port, driven by real sockets.
//
// The single-threaded suites check exact agreement with a std::set
// oracle. The concurrent suite partitions the key space the same way
// nm_scan_test does — per-writer private churn keys (each writer checks
// its own results exactly against its own mirror), plus globally stable
// keys (seeded, never touched) and forbidden keys (never inserted) so
// concurrent range scans can be checked against the conservative-
// interval contract: every stable key in range appears, no forbidden
// key ever does, and every page arrives sorted and duplicate-free.
//
// Key-space layout by residue mod 4 over [0, key_range):
//   0 -> stable (seeded, never mutated)     2 -> forbidden (never inserted)
//   1, 3 -> churn, partitioned among writer threads by (k / 2) % writers
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/natarajan_tree.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "shard/sharded_set.hpp"

namespace lfbst::server {
namespace {

using tree_type = nm_tree<std::int64_t, std::less<std::int64_t>,
                          reclaim::epoch, obs::recording>;
using set_type = shard::sharded_set<tree_type>;

constexpr std::int64_t kKeyRange = 1 << 14;

struct server_fixture {
  set_type set;
  basic_server<set_type> server;

  explicit server_fixture(unsigned event_threads = 2,
                          server_config extra = {})
      : set(8, 0, kKeyRange), server(set, [&] {
          extra.event_threads = event_threads;
          return extra;
        }()) {
    EXPECT_TRUE(server.start());
  }

  [[nodiscard]] client connect() {
    client c;
    EXPECT_TRUE(c.connect("127.0.0.1", server.port()));
    return c;
  }
};

TEST(ServerIntegration, PointOpsMatchStdSetOracle) {
  server_fixture fx;
  client c = fx.connect();
  std::set<std::int64_t> oracle;
  pcg32 rng(42);
  for (int i = 0; i < 4000; ++i) {
    const std::int64_t key = rng.bounded(512);
    bool result = false;
    switch (rng.bounded(3)) {
      case 0:
        ASSERT_TRUE(c.insert(key, result));
        EXPECT_EQ(result, oracle.insert(key).second);
        break;
      case 1:
        ASSERT_TRUE(c.erase(key, result));
        EXPECT_EQ(result, oracle.erase(key) > 0);
        break;
      default:
        ASSERT_TRUE(c.get(key, result));
        EXPECT_EQ(result, oracle.count(key) > 0);
        break;
    }
  }
  // The final state agrees key for key.
  std::vector<std::int64_t> all;
  ASSERT_TRUE(c.range_scan_all(0, kKeyRange, 128, all));
  EXPECT_EQ(all, std::vector<std::int64_t>(oracle.begin(), oracle.end()));
}

TEST(ServerIntegration, BatchFramesMatchOracleInInputOrder) {
  server_fixture fx;
  client c = fx.connect();
  std::set<std::int64_t> oracle;
  pcg32 rng(7);
  for (int round = 0; round < 60; ++round) {
    std::vector<std::int64_t> keys(1 + rng.bounded(200));
    for (auto& k : keys) k = rng.bounded(256);
    const opcode sub = static_cast<opcode>(1 + rng.bounded(3));
    std::vector<bool> results;
    ASSERT_TRUE(c.batch(sub, keys, results));
    ASSERT_EQ(results.size(), keys.size());
    // Replay against the oracle element by element: same-shard batch
    // elements apply in input order, and a serial client's batch is
    // fully ordered against its other requests.
    for (std::size_t i = 0; i < keys.size(); ++i) {
      bool expected = false;
      switch (sub) {
        case opcode::get: expected = oracle.count(keys[i]) > 0; break;
        case opcode::insert: expected = oracle.insert(keys[i]).second; break;
        case opcode::erase: expected = oracle.erase(keys[i]) > 0; break;
        default: break;
      }
      EXPECT_EQ(results[i], expected) << "round " << round << " elem " << i;
    }
  }
}

TEST(ServerIntegration, RangeScanPagesStitchIntoTheOracleView) {
  server_fixture fx;
  client c = fx.connect();
  std::set<std::int64_t> oracle;
  pcg32 rng(11);
  for (int i = 0; i < 3000; ++i) {
    const std::int64_t key = rng.bounded(kKeyRange);
    bool r = false;
    ASSERT_TRUE(c.insert(key, r));
    oracle.insert(key);
  }
  // Whole-range pagination at several page sizes, including 1.
  for (const std::uint32_t page : {1u, 7u, 128u, 100000u}) {
    std::vector<std::int64_t> all;
    ASSERT_TRUE(c.range_scan_all(0, kKeyRange, page, all));
    EXPECT_EQ(all, std::vector<std::int64_t>(oracle.begin(), oracle.end()))
        << "page " << page;
  }
  // Sub-range pages agree with the oracle's interval view.
  for (int trial = 0; trial < 50; ++trial) {
    const std::int64_t lo = rng.bounded(kKeyRange);
    const std::int64_t hi = lo + 1 + rng.bounded(2048);
    std::vector<std::int64_t> got;
    ASSERT_TRUE(c.range_scan_all(lo, hi, 32, got));
    const std::vector<std::int64_t> want(oracle.lower_bound(lo),
                                         oracle.lower_bound(hi));
    EXPECT_EQ(got, want) << "[" << lo << ", " << hi << ")";
  }
  // max_items = 0 delegates to the server's default page size.
  client::scan_result first;
  ASSERT_TRUE(c.range_scan(0, kKeyRange, 0, first));
  EXPECT_LE(first.keys.size(), fx.server.config().default_scan_items);
}

TEST(ServerIntegration, PipelinedMixedFramesComeBackInInputOrder) {
  server_fixture fx;
  client c = fx.connect();
  // A pipeline mixing coalescable point runs, batch frames and scans;
  // responses must arrive in exactly the order the requests were sent,
  // with every id echoed.
  std::vector<request> sent;
  pcg32 rng(1234);
  for (int i = 0; i < 400; ++i) {
    request req;
    req.id = c.next_id();
    switch (rng.bounded(6)) {
      case 0:
      case 1:
      case 2: {  // runs of point ops (coalescing food)
        req.op = static_cast<opcode>(1 + rng.bounded(3));
        req.key = rng.bounded(1024);
        break;
      }
      case 3: {
        req.op = opcode::batch;
        req.batch_op = static_cast<opcode>(1 + rng.bounded(3));
        req.keys.resize(1 + rng.bounded(16));
        for (auto& k : req.keys) k = rng.bounded(1024);
        break;
      }
      case 4: {
        req.op = opcode::range_scan;
        req.lo = 0;
        req.hi = 1024;
        req.max_items = 64;
        break;
      }
      default: req.op = opcode::ping; break;
    }
    ASSERT_TRUE(c.send_request(req));
    sent.push_back(std::move(req));
  }
  std::set<std::int64_t> oracle;
  for (const request& req : sent) {
    response resp;
    ASSERT_TRUE(c.recv_response(resp));
    ASSERT_EQ(resp.id, req.id) << "response out of input order";
    ASSERT_EQ(resp.op, req.op);
    ASSERT_EQ(resp.status, status_code::ok);
    // Replay serially: input-order responses make the oracle exact.
    switch (req.op) {
      case opcode::get: EXPECT_EQ(resp.result, oracle.count(req.key) > 0); break;
      case opcode::insert:
        EXPECT_EQ(resp.result, oracle.insert(req.key).second);
        break;
      case opcode::erase:
        EXPECT_EQ(resp.result, oracle.erase(req.key) > 0);
        break;
      case opcode::batch:
        ASSERT_EQ(resp.results.size(), req.keys.size());
        for (std::size_t i = 0; i < req.keys.size(); ++i) {
          bool expected = false;
          switch (req.batch_op) {
            case opcode::get: expected = oracle.count(req.keys[i]) > 0; break;
            case opcode::insert:
              expected = oracle.insert(req.keys[i]).second;
              break;
            case opcode::erase: expected = oracle.erase(req.keys[i]) > 0; break;
            default: break;
          }
          EXPECT_EQ(resp.results[i] != 0, expected);
        }
        break;
      case opcode::range_scan: {
        // Serial client: the scan page is exact — the smallest
        // max_items oracle keys of [lo, hi).
        std::vector<std::int64_t> expect_page(
            oracle.lower_bound(req.lo), oracle.lower_bound(req.hi));
        if (expect_page.size() > req.max_items) {
          expect_page.resize(req.max_items);
        }
        EXPECT_EQ(resp.keys, expect_page);
        break;
      }
      case opcode::ping: break;
    }
  }
  // The pipelined point runs must actually have been coalesced.
  EXPECT_GT(fx.server.stats().coalesced_groups.load(), 0u);
}

TEST(ServerIntegration, ConcurrentMixedWorkloadHonorsTheScanContract) {
  server_config cfg;
  server_fixture fx(/*event_threads=*/3, cfg);
  constexpr int kWriters = 4;
  constexpr int kScanners = 2;
  constexpr int kOpsPerWriter = 3000;

  // Seed the stable keys (residue 0 mod 4) through the wire.
  {
    client seed = fx.connect();
    std::vector<std::int64_t> stable;
    for (std::int64_t k = 0; k < kKeyRange; k += 4) stable.push_back(k);
    std::vector<bool> results;
    ASSERT_TRUE(seed.batch(opcode::insert, stable, results));
    for (const bool inserted : results) ASSERT_TRUE(inserted);
  }

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kWriters + kScanners);

  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      client c;
      if (!c.connect("127.0.0.1", fx.server.port())) {
        ++failures;
        return;
      }
      // This writer owns odd keys with (k / 2) % kWriters == w: nobody
      // else mutates them, so a private mirror predicts every result.
      std::set<std::int64_t> mine;
      pcg32 rng = pcg32::for_thread(99, static_cast<unsigned>(w));
      for (int i = 0; i < kOpsPerWriter; ++i) {
        const std::int64_t half = rng.bounded(kKeyRange / 2);
        const std::int64_t owned =
            (half / kWriters) * kWriters + w;  // (owned) % kWriters == w
        const std::int64_t key = 2 * owned + 1;
        if (key >= kKeyRange) continue;
        bool result = false;
        bool sent = false;
        switch (rng.bounded(4)) {
          case 0:
          case 1:
            sent = c.insert(key, result);
            if (sent && result != mine.insert(key).second) ++failures;
            break;
          case 2:
            sent = c.erase(key, result);
            if (sent && result != (mine.erase(key) > 0)) ++failures;
            break;
          default:
            sent = c.get(key, result);
            if (sent && result != (mine.count(key) > 0)) ++failures;
            break;
        }
        if (!sent) {
          ++failures;
          return;
        }
        // Sprinkle batches over owned keys: results must match the
        // mirror element-for-element, in input order.
        if (i % 64 == 0) {
          std::vector<std::int64_t> keys;
          for (int j = 0; j < 16; ++j) {
            const std::int64_t h = rng.bounded(kKeyRange / 2);
            const std::int64_t own = (h / kWriters) * kWriters + w;
            const std::int64_t k2 = 2 * own + 1;
            if (k2 < kKeyRange) keys.push_back(k2);
          }
          std::vector<bool> results2;
          if (!c.batch(opcode::insert, keys, results2) ||
              results2.size() != keys.size()) {
            ++failures;
            return;
          }
          for (std::size_t j = 0; j < keys.size(); ++j) {
            if (results2[j] != mine.insert(keys[j]).second) ++failures;
          }
        }
      }
    });
  }

  for (int s = 0; s < kScanners; ++s) {
    threads.emplace_back([&, s] {
      client c;
      if (!c.connect("127.0.0.1", fx.server.port())) {
        ++failures;
        return;
      }
      pcg32 rng = pcg32::for_thread(1234, static_cast<unsigned>(100 + s));
      while (!stop.load(std::memory_order_acquire)) {
        const std::int64_t lo = rng.bounded(kKeyRange / 2);
        const std::int64_t hi = lo + 1 + rng.bounded(kKeyRange / 2);
        std::vector<std::int64_t> page;
        if (!c.range_scan_all(lo, hi, 64 + rng.bounded(256), page)) {
          ++failures;
          return;
        }
        // Sorted, duplicate-free.
        for (std::size_t i = 1; i < page.size(); ++i) {
          if (!(page[i - 1] < page[i])) ++failures;
        }
        // Conservative-interval contract across pages: stable keys
        // (0 mod 4) always appear; forbidden keys (2 mod 4) never do.
        std::size_t stable_seen = 0;
        for (const std::int64_t k : page) {
          if (k < lo || k >= hi) ++failures;  // out of requested range
          if ((k & 3) == 2) ++failures;       // never inserted
          if ((k & 3) == 0) ++stable_seen;
        }
        const std::size_t stable_expected =
            static_cast<std::size_t>((hi + 3) / 4 - (lo + 3) / 4);
        if (stable_seen != stable_expected) ++failures;
      }
    });
  }

  for (int w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true, std::memory_order_release);
  for (std::size_t t = kWriters; t < threads.size(); ++t) threads[t].join();
  EXPECT_EQ(failures.load(), 0);

  // The set's own merged attribution saw the traffic: every wire op
  // lands in a shard's recording registry.
  const auto counters = fx.set.merged_counters();
  EXPECT_GT(counters[obs::counter::ops_insert], 0u);
  EXPECT_GT(counters[obs::counter::ops_scan], 0u);
  const auto& st = fx.server.stats();
  EXPECT_EQ(st.frames_in.load(), st.responses_out.load());
  EXPECT_EQ(st.protocol_errors.load(), 0u);
}

TEST(ServerIntegration, LatencyObserverRecordsEveryRequest) {
  server_fixture fx;
  {
    client c = fx.connect();
    bool r = false;
    for (int i = 0; i < 100; ++i) ASSERT_TRUE(c.insert(i, r));
    for (int i = 0; i < 50; ++i) ASSERT_TRUE(c.get(i, r));
    for (int i = 0; i < 25; ++i) ASSERT_TRUE(c.erase(i, r));
  }
  fx.server.begin_drain();
  fx.server.join();
  EXPECT_EQ(fx.server.latency().merged(stats::op_kind::insert).count(), 100u);
  EXPECT_EQ(fx.server.latency().merged(stats::op_kind::search).count(), 50u);
  EXPECT_EQ(fx.server.latency().merged(stats::op_kind::erase).count(), 25u);
  const auto all = fx.server.latency().merged_all();
  EXPECT_EQ(all.count(), 175u);
  EXPECT_GT(all.value_at_percentile(50), 0u);
}

}  // namespace
}  // namespace lfbst::server
