// Sharded front-end evaluation: throughput of shard::sharded_set as a
// grid of shard count x thread count, against the unsharded NM-BST as
// the zero-front-end baseline. Three studies land in one report:
//
//   sweep   : Mops/s per (algorithm, shards, threads) cell under the
//             uniform-50/25/25 mix. Baseline rows carry shards=0
//             (no front-end at all, a plain tree).
//   batch   : per-element throughput of the batched API vs the same
//             soup issued as single-key calls (batch_size=1 row), at
//             the largest swept shard count.
//   metrics : merged per-shard counters from an obs::recording run,
//             one row per counter — the PR 2 merge algebra folded
//             across shards.
//   scan    : cross-shard ordered scans racing writers, self-checking
//             (sorted + stable-key completeness columns the perf gate
//             enforces).
//   rebalance : static router vs the adaptive rebalancer under uniform,
//             hotspot and Zipf key streams — throughput plus the
//             max-shard-share imbalance gauge sampled at the start and
//             end of the run (check_rebalance gates: adaptive must beat
//             static on skew and drive the share toward 1/shards).
//   numa    : shard-slot placement policy none vs interleave at the top
//             grid cell (informational on single-node machines; the
//             cross-socket sweep when the runner has multiple nodes).
//
// Defaults are laptop-sized; scale with flags:
//   bench_sharded --millis 2000 --threads 1,2,4,8 --shards 1,2,4,8,16
// --extended adds the EFRB and HJ sharded compositions to the sweep.
// --json <path> writes the lfbst-bench-v1 document
// (tools/check_bench_json.py validates it).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <optional>

#include "common/barrier.hpp"
#include "common/rng.hpp"
#include "harness/algorithms.hpp"
#include "harness/flags.hpp"
#include "harness/runner.hpp"
#include "harness/statistics.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "harness/zipf.hpp"
#include "obs/export.hpp"
#include "obs/heatmap.hpp"
#include "shard/numa.hpp"
#include "shard/rebalancer.hpp"

namespace {

using namespace lfbst;
using namespace lfbst::harness;

// Per-element Mops/s of a mixed 50/25/25 soup issued through the batch
// API in groups of `batch`; batch==1 uses the single-key entry points,
// so the delta is the cost (or saving) of the grouping layer itself.
template <typename Set>
double run_batch_soup(Set& set, std::int64_t key_range, unsigned threads,
                      unsigned batch, std::chrono::milliseconds duration,
                      std::uint64_t seed) {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> elements{0};
  spin_barrier barrier(threads + 1);
  std::vector<std::thread> workers;
  for (unsigned tid = 0; tid < threads; ++tid) {
    workers.emplace_back([&, tid] {
      pcg32 rng = pcg32::for_thread(seed, tid);
      std::uint64_t local = 0;
      std::vector<long> keys(batch);
      barrier.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        for (auto& k : keys) {
          k = static_cast<long>(rng.next64() %
                                static_cast<std::uint64_t>(key_range));
        }
        const auto roll = rng.bounded(4);
        if (batch == 1) {
          if (roll < 2) {
            (void)set.contains(keys[0]);
          } else if (roll == 2) {
            (void)set.insert(keys[0]);
          } else {
            (void)set.erase(keys[0]);
          }
        } else {
          if (roll < 2) {
            (void)set.contains_batch(keys);
          } else if (roll == 2) {
            (void)set.insert_batch(keys);
          } else {
            (void)set.erase_batch(keys);
          }
        }
        local += batch;
      }
      elements.fetch_add(local, std::memory_order_relaxed);
    });
  }
  barrier.arrive_and_wait();
  const auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(duration);
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return static_cast<double>(elements.load()) / secs / 1e6;
}

// One rebalance-study run: a 50/25/25 soup whose key stream is
// `workload` (uniform | hotspot90 | zipf), with the max-shard-share
// imbalance gauge sampled over the first and last quarter of the run.
// The rebalancer (when any) is already armed and started by the caller.
struct rebalance_result {
  double mops = 0.0;
  double share_start = 0.0;
  double share_end = 0.0;
};

template <typename Set>
rebalance_result run_rebalance_case(Set& set, std::int64_t key_range,
                                    const std::string& workload,
                                    unsigned threads,
                                    std::chrono::milliseconds duration,
                                    std::uint64_t seed) {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total_ops{0};
  spin_barrier barrier(threads + 1);
  const auto hot_range =
      static_cast<std::uint32_t>(std::max<std::int64_t>(key_range / 8, 1));
  std::vector<std::thread> workers;
  for (unsigned tid = 0; tid < threads; ++tid) {
    workers.emplace_back([&, tid] {
      pcg32 rng = pcg32::for_thread(seed, tid);
      const zipf_generator zipf(static_cast<std::uint64_t>(key_range), 0.99);
      std::uint64_t local = 0;
      barrier.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        long k;
        if (workload == "zipf") {
          // Unscrambled ranks: the hot keys cluster at the low end of
          // the domain, melting the first shard — the adversarial case.
          k = static_cast<long>(zipf(rng));
        } else if (workload == "hotspot90" && rng.bounded(10) < 9) {
          k = static_cast<long>(rng.bounded(hot_range));
        } else {
          k = static_cast<long>(rng.next64() %
                                static_cast<std::uint64_t>(key_range));
        }
        const auto roll = rng.bounded(4);
        if (roll < 2) {
          (void)set.contains(k);
        } else if (roll == 2) {
          (void)set.insert(k);
        } else {
          (void)set.erase(k);
        }
        ++local;
      }
      total_ops.fetch_add(local, std::memory_order_relaxed);
    });
  }
  auto snapshot = [&] {
    std::vector<std::uint64_t> v(set.shard_count());
    for (std::size_t i = 0; i < set.shard_count(); ++i) {
      v[i] = set.shard_counters(i).point_ops();
    }
    return v;
  };
  auto max_share = [](const std::vector<std::uint64_t>& a,
                      const std::vector<std::uint64_t>& b) {
    std::uint64_t total = 0;
    std::uint64_t mx = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const std::uint64_t d = b[i] - a[i];
      total += d;
      mx = std::max(mx, d);
    }
    return total == 0 ? 0.0
                      : static_cast<double>(mx) / static_cast<double>(total);
  };
  barrier.arrive_and_wait();
  const auto start = std::chrono::steady_clock::now();
  const auto w0 = snapshot();
  std::this_thread::sleep_for(duration / 4);
  const auto w1 = snapshot();
  std::this_thread::sleep_for(duration / 2);
  const auto w2 = snapshot();
  std::this_thread::sleep_for(duration / 4);
  const auto w3 = snapshot();
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  rebalance_result r;
  r.mops = static_cast<double>(total_ops.load()) / secs / 1e6;
  r.share_start = max_share(w0, w1);
  r.share_end = max_share(w2, w3);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::flags flags(argc, argv);
  const bool csv_only = flags.has("csv");
  const bool extended = flags.has("extended");
  const auto millis = flags.get_int("millis", 100);
  const auto runs = static_cast<std::size_t>(flags.get_int("runs", 1));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const auto key_range = flags.get_int("keyrange", 100'000);
  const auto threads = flags.get_int_list("threads", {1, 2, 4});
  const auto shard_counts = flags.get_int_list("shards", {1, 2, 4, 8});
  const auto duration = std::chrono::milliseconds(millis);

  text_table sweep({"study", "algorithm", "shards", "threads", "key_range",
                    "workload", "mops_per_sec"});

  if (!csv_only) {
    std::printf("=== Sharded front-end: throughput (Mops/s), %s, "
                "%lld keys ===\n",
                uniform_50_25_25.name, static_cast<long long>(key_range));
  }

  auto sweep_cell = [&](const std::string& algo, std::int64_t shards,
                        std::int64_t t, auto make_and_run) {
    const run_stats stats = aggregate_runs(make_and_run, runs);
    sweep.add_row({"sweep", algo, std::to_string(shards), std::to_string(t),
                   std::to_string(key_range), uniform_50_25_25.name,
                   format("%.4f", stats.mean)});
    if (!csv_only) {
      std::printf("  %-14s shards=%-3lld threads=%-3lld  %8.3f Mops/s\n",
                  algo.c_str(), static_cast<long long>(shards),
                  static_cast<long long>(t), stats.mean);
    }
  };

  workload_config cfg;
  cfg.key_range = static_cast<std::uint64_t>(key_range);
  cfg.mix = uniform_50_25_25;
  cfg.duration = duration;
  cfg.seed = seed;

  // Baseline: the plain tree, no front-end (shards=0 rows).
  for (const std::int64_t t : threads) {
    cfg.threads = static_cast<unsigned>(t);
    sweep_cell("NM-BST", 0, t, [&] {
      nm_tree<long> tree;
      return run_workload(tree, cfg).mops_per_second();
    });
  }

  // The sharded grid.
  auto sweep_sharded = [&]<typename Set>() {
    const std::string algo =
        std::string("Sharded/") + Set::tree_type::algorithm_name;
    for (const std::int64_t shards : shard_counts) {
      for (const std::int64_t t : threads) {
        cfg.threads = static_cast<unsigned>(t);
        sweep_cell(algo, shards, t, [&] {
          Set set(static_cast<std::size_t>(shards), 0,
                  static_cast<long>(key_range));
          return run_workload(set, cfg).mops_per_second();
        });
      }
    }
  };
  if (extended) {
    for_each_sharded_algorithm<long>(sweep_sharded);
  } else {
    sweep_sharded.template operator()<shard::sharded_set<nm_tree<long>>>();
  }

  // --- batch study -----------------------------------------------------
  text_table batch_tbl({"study", "algorithm", "shards", "threads",
                        "batch_size", "mops_per_sec"});
  const std::int64_t batch_shards = shard_counts.back();
  const std::int64_t batch_threads = threads.back();
  if (!csv_only) {
    std::printf("\n=== Batched vs single-key issue (shards=%lld, "
                "threads=%lld) ===\n",
                static_cast<long long>(batch_shards),
                static_cast<long long>(batch_threads));
  }
  for (const unsigned batch : {1u, 8u, 64u}) {
    shard::sharded_set<nm_tree<long>> set(
        static_cast<std::size_t>(batch_shards), 0,
        static_cast<long>(key_range));
    prepopulate_half(set, static_cast<std::uint64_t>(key_range), seed);
    const double mops = run_batch_soup(
        set, key_range, static_cast<unsigned>(batch_threads), batch,
        duration, seed);
    batch_tbl.add_row({"batch", "Sharded/NM-BST",
                       std::to_string(batch_shards),
                       std::to_string(batch_threads), std::to_string(batch),
                       format("%.4f", mops)});
    if (!csv_only) {
      std::printf("  batch_size=%-3u  %8.3f Mops/s (per element)\n", batch,
                  mops);
    }
  }

  // --- scan study ------------------------------------------------------
  // Cross-shard ordered scans racing writers — no quiescence anywhere.
  // Self-checking rows: even (STABLE) keys are pre-inserted and never
  // touched, odd keys churn; every scan must report all stable keys in
  // order. The gate (check_scan) fails the build on a violated row.
  text_table scan_tbl({"study", "algorithm", "shards", "writers", "scans",
                       "mkeys_per_sec", "keys_per_scan", "sorted",
                       "stable_complete"});
  {
    const std::size_t scan_shards =
        static_cast<std::size_t>(shard_counts.back());
    const long scan_range = static_cast<long>(key_range);
    shard::sharded_set<nm_tree<long, std::less<long>, reclaim::epoch>> set(
        scan_shards, 0, scan_range);
    for (long k = 0; k < scan_range; k += 2) set.insert(k);
    const std::uint64_t stable = static_cast<std::uint64_t>(scan_range) / 2;
    std::atomic<bool> stop{false};
    constexpr unsigned kScanWriters = 2;
    std::vector<std::thread> writers;
    for (unsigned t = 0; t < kScanWriters; ++t) {
      writers.emplace_back([&set, &stop, scan_range, seed, t] {
        pcg32 rng = pcg32::for_thread(seed, t);
        while (!stop.load(std::memory_order_acquire)) {
          const long k =
              2 * static_cast<long>(rng.bounded(
                      static_cast<std::uint32_t>(scan_range / 2))) +
              1;
          if (rng.bounded(2) != 0) {
            set.insert(k);
          } else {
            set.erase(k);
          }
        }
      });
    }
    constexpr int kScanCount = 30;
    bool sorted = true;
    bool stable_complete = true;
    std::uint64_t emitted = 0;
    const auto scan_start = std::chrono::steady_clock::now();
    for (int i = 0; i < kScanCount; ++i) {
      const std::vector<long> got = set.range_scan_closed(0, scan_range - 1);
      emitted += got.size();
      std::uint64_t stable_seen = 0;
      for (std::size_t j = 0; j < got.size(); ++j) {
        if (j > 0 && got[j - 1] >= got[j]) sorted = false;
        if ((got[j] & 1) == 0) ++stable_seen;
      }
      if (stable_seen != stable) stable_complete = false;
    }
    const auto scan_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - scan_start)
            .count();
    stop.store(true, std::memory_order_release);
    for (auto& w : writers) w.join();
    scan_tbl.add_row(
        {"scan", "Sharded/NM-BST-epoch", std::to_string(scan_shards),
         std::to_string(kScanWriters), std::to_string(kScanCount),
         format("%.3f",
                static_cast<double>(emitted) * 1e3 /
                    static_cast<double>(scan_ns)),
         format("%.1f", static_cast<double>(emitted) / kScanCount),
         sorted ? "1" : "0", stable_complete ? "1" : "0"});
    if (!csv_only) {
      std::printf("\n=== Concurrent cross-shard scans (shards=%zu, "
                  "writers=%u) ===\n",
                  scan_shards, kScanWriters);
      scan_tbl.print();
    }
  }

  // --- metrics study ---------------------------------------------------
  // A short recording run; the report rows are the *merged* counters —
  // each shard owns its own registry and the merge algebra folds them.
  text_table metrics_tbl({"study", "counter", "value"});
  {
    using recorded =
        nm_tree<long, std::less<long>, reclaim::leaky, obs::recording>;
    shard::sharded_set<recorded> set(
        static_cast<std::size_t>(batch_shards), 0,
        static_cast<long>(key_range));
    cfg.threads = static_cast<unsigned>(batch_threads);
    run_workload(set, cfg);
    const obs::metrics_snapshot merged = set.merged_counters();
    for (std::size_t i = 0; i < obs::counter_count; ++i) {
      metrics_tbl.add_row(
          {"metrics", obs::counter_name(static_cast<obs::counter>(i)),
           std::to_string(merged.values[i])});
    }
  }
  // --- rebalance study -------------------------------------------------
  // Static router vs the adaptive rebalancer under uniform, hotspot and
  // Zipf key streams. Besides throughput, each row samples the
  // max-shard-share imbalance gauge over the first and last quarter of
  // the run: adaptive rows must drive it toward 1/shards on skewed
  // streams (check_rebalance gates this together with the throughput
  // win over the matching static row).
  text_table rebalance_tbl({"study", "mode", "workload", "shards", "threads",
                            "mops_per_sec", "migrations", "keys_migrated",
                            "share_start", "share_end"});
  {
    using rb_tree =
        nm_tree<long, std::less<long>, reclaim::epoch, obs::recording>;
    using rb_set = shard::sharded_set<rb_tree>;
    const std::size_t rb_shards =
        static_cast<std::size_t>(shard_counts.back());
    const unsigned rb_threads = static_cast<unsigned>(threads.back());
    if (!csv_only) {
      std::printf("\n=== Adaptive rebalancing (shards=%zu, threads=%u) ===\n",
                  rb_shards, rb_threads);
    }
    for (const char* workload : {"uniform", "hotspot90", "zipf"}) {
      for (const bool adaptive : {false, true}) {
        rb_set set(rb_set::router_type(rb_shards, 0,
                                       static_cast<long>(key_range)));
        obs::key_heatmap heatmap(0, key_range);
        set.for_each_shard_stats(
            [&](obs::recording& stats) { stats.attach_heatmap(&heatmap); });
        prepopulate_half(set, static_cast<std::uint64_t>(key_range), seed);
        heatmap.reset();  // the prepopulate fill is not workload signal
        std::optional<shard::rebalancer<rb_set>> rebalancer;
        if (adaptive) {
          shard::rebalancer_options ropts;
          ropts.interval_ms = std::max<std::uint64_t>(
              5, static_cast<std::uint64_t>(millis) / 20);
          ropts.min_window_ops = 512;
          ropts.heatmap = &heatmap;
          rebalancer.emplace(set, ropts);
          rebalancer->start();
        }
        const rebalance_result r = run_rebalance_case(
            set, key_range, workload, rb_threads, duration, seed);
        if (rebalancer) rebalancer->stop();
        rebalance_tbl.add_row(
            {"rebalance", adaptive ? "adaptive" : "static", workload,
             std::to_string(rb_shards), std::to_string(rb_threads),
             format("%.4f", r.mops), std::to_string(set.migration_count()),
             std::to_string(set.keys_migrated()),
             format("%.4f", r.share_start), format("%.4f", r.share_end)});
        if (!csv_only) {
          std::printf("  %-9s %-9s  %8.3f Mops/s  migrations=%llu "
                      "keys=%llu  share %.3f -> %.3f\n",
                      workload, adaptive ? "adaptive" : "static", r.mops,
                      static_cast<unsigned long long>(set.migration_count()),
                      static_cast<unsigned long long>(set.keys_migrated()),
                      r.share_start, r.share_end);
        }
      }
    }
  }

  // --- numa study ------------------------------------------------------
  // Shard-slot placement policy at the top grid cell. On a single-node
  // machine both rows run the same code path (placement degrades to a
  // no-op), so the rows are informational there; on a multi-socket
  // runner the nodes column reports the detected topology.
  text_table numa_tbl(
      {"study", "mode", "nodes", "shards", "threads", "mops_per_sec"});
  {
    const std::size_t nn = shard::numa::topology::cached().node_count();
    const std::int64_t na_shards = shard_counts.back();
    const std::int64_t na_threads = threads.back();
    cfg.threads = static_cast<unsigned>(na_threads);
    if (!csv_only) {
      std::printf("\n=== NUMA placement (nodes=%zu, shards=%lld, "
                  "threads=%lld) ===\n",
                  nn, static_cast<long long>(na_shards),
                  static_cast<long long>(na_threads));
    }
    for (const bool interleave : {false, true}) {
      using na_set = shard::sharded_set<nm_tree<long>>;
      shard::numa::policy placement;
      placement.mode = interleave ? shard::numa::placement::interleave
                                  : shard::numa::placement::none;
      const run_stats stats = aggregate_runs(
          [&] {
            na_set set(na_set::router_type(
                           static_cast<std::size_t>(na_shards), 0,
                           static_cast<long>(key_range)),
                       placement);
            return run_workload(set, cfg).mops_per_second();
          },
          runs);
      numa_tbl.add_row({"numa", interleave ? "interleave" : "none",
                        std::to_string(nn), std::to_string(na_shards),
                        std::to_string(na_threads),
                        format("%.4f", stats.mean)});
      if (!csv_only) {
        std::printf("  placement=%-10s  %8.3f Mops/s\n",
                    interleave ? "interleave" : "none", stats.mean);
      }
    }
  }

  if (!csv_only) {
    std::printf("\n=== Merged per-shard counters (recording run) ===\n");
    metrics_tbl.print();
    std::printf("\n=== CSV ===\n");
  }
  sweep.print_csv(stdout);
  batch_tbl.print_csv(stdout);

  if (flags.has("json")) {
    const std::string path = flags.get("json", "sharded.json");
    obs::bench_report report("sharded");
    report.config.set("millis", millis);
    report.config.set("runs", static_cast<std::uint64_t>(runs));
    report.config.set("seed", seed);
    report.config.set("key_range", key_range);
    report.config.set("extended", extended);
    // The rebalance gate reads this: on a single-core runner the
    // balanced configuration cannot out-run the static one (threads
    // timeslice one core), so only the balance-outcome columns gate.
    report.config.set(
        "hardware_threads",
        static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
    report.results = obs::rows_from_table(sweep.header(), sweep.rows());
    const obs::json::value batch_rows =
        obs::rows_from_table(batch_tbl.header(), batch_tbl.rows());
    for (const auto& row : batch_rows.items()) report.add_result(row);
    const obs::json::value metrics_rows =
        obs::rows_from_table(metrics_tbl.header(), metrics_tbl.rows());
    for (const auto& row : metrics_rows.items()) report.add_result(row);
    const obs::json::value scan_rows =
        obs::rows_from_table(scan_tbl.header(), scan_tbl.rows());
    for (const auto& row : scan_rows.items()) report.add_result(row);
    const obs::json::value rebalance_rows =
        obs::rows_from_table(rebalance_tbl.header(), rebalance_tbl.rows());
    for (const auto& row : rebalance_rows.items()) report.add_result(row);
    const obs::json::value numa_rows =
        obs::rows_from_table(numa_tbl.header(), numa_tbl.rows());
    for (const auto& row : numa_rows.items()) report.add_result(row);
    if (!report.write_file(path)) return 1;
    if (!csv_only) std::printf("\nJSON report: %s\n", path.c_str());
  }
  return 0;
}
