// Network front-end evaluation: a multi-connection load-test client
// driving a server::basic_server over loopback TCP. Each cell of the
// (mix, connections, pipeline) grid hammers the server from
// `connections` client threads each keeping `pipeline` requests in
// flight, and reports client-observed throughput, the uncontended ping
// RTT floor (min over a short burst, measured before the load starts),
// plus the server-side per-request latency ladder (p50/p99/p999)
// recorded by obs::latency_observer on the execution path.
//
// Two server placements:
//
//   in-process (default): each cell starts a fresh set + server, so
//   cells are independent and the server-side latency observer is
//   readable after quiesce.
//   --connect host:port : drive an already-running lfbst_serve instead
//   (the CI telemetry smoke uses this to put real load behind the
//   Prometheus endpoint). The key space is pre-populated over the wire
//   with batch inserts; server-side latency columns read 0 because the
//   observer lives in the other process — scrape its /metrics for the
//   window quantiles instead.
//
// Two mixes bracket the design space (--mix selects one, default both):
//
//   membership : the read-dominated session-table scenario (90% get,
//                5% insert, 5% erase) — the live-membership demo this
//                bench absorbed, now measured over real sockets.
//   mixed      : the paper's 50/25/25 soup, where pipelining lets the
//                server coalesce same-opcode runs into *_batch calls.
//
// Defaults are laptop-sized; scale with flags:
//   bench_server --millis 2000 --connections 1,4,16 --pipeline 1,16,64
// --json <path> writes the lfbst-bench-v1 document
// (tools/check_bench_json.py validates it; check_perf_regression.py
// gates the pipelined p99 against bench/baseline_server.json).
//
// --keys sequential|bit_reversed|adaptive_attack replays an adversarial
// insertion order (src/harness/key_streams.hpp) during pre-population
// instead of the uniform draw — the nightly attack-stream soak drives
// an external lfbst_serve this way and gates the seek-depth columns of
// the server's own --json report (docs/RESILIENCE.md). The load phase
// itself still draws request keys uniformly: the attack is the
// insertion ORDER that shapes the tree, and uniform probes then pay
// (or, scrambled, don't pay) the degenerate depth.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "harness/flags.hpp"
#include "harness/key_streams.hpp"
#include "harness/table.hpp"
#include "lfbst/lfbst.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "shard/sharded_set.hpp"

namespace {

using namespace lfbst;

using set_type = shard::sharded_set<
    nm_tree<std::int64_t, std::less<std::int64_t>, reclaim::epoch,
            obs::recording>>;

struct mix_spec {
  const char* name;
  unsigned get_pct;
  unsigned insert_pct;  // remainder after get+insert is erase
};

constexpr mix_spec kMixes[] = {
    {"membership", 90, 5},
    {"mixed", 50, 25},
};

struct cell_result {
  std::uint64_t ops = 0;
  double mops_per_sec = 0;
  std::uint64_t rtt_us = 0;  // min ping RTT before the load started
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t p999_ns = 0;
  std::uint64_t coalesced_groups = 0;
};

/// Where a cell's server lives: in-process (host empty) or an external
/// lfbst_serve reached over --connect host:port.
struct endpoint {
  std::string host;  // empty = start an in-process server per cell
  std::uint16_t port = 0;

  [[nodiscard]] bool external() const noexcept { return !host.empty(); }
};

/// Pre-populates half the key space through the wire with batch
/// inserts — the external-server counterpart of filling the in-process
/// set directly. Idempotent across cells (inserting a present key is a
/// cheap no-op).
bool prepopulate_external(const endpoint& ep, std::int64_t key_range,
                          std::uint64_t seed,
                          harness::key_stream_kind kind) {
  server::client cli;
  if (!cli.connect(ep.host, ep.port)) return false;
  pcg32 rng(seed);
  constexpr std::size_t chunk = 512;
  std::vector<std::int64_t> keys;
  std::vector<bool> results;
  keys.reserve(chunk);
  std::uint64_t stream_index = 0;
  for (std::int64_t remaining = key_range / 2; remaining > 0;) {
    keys.clear();
    const std::size_t n =
        remaining < static_cast<std::int64_t>(chunk)
            ? static_cast<std::size_t>(remaining)
            : chunk;
    for (std::size_t i = 0; i < n; ++i) {
      // Batch boundaries don't disturb the attack: the server executes
      // each batch's inserts in order, so the stream's insertion order
      // reaches the trees intact.
      keys.push_back(
          kind == harness::key_stream_kind::uniform
              ? static_cast<std::int64_t>(
                    rng.next64() % static_cast<std::uint64_t>(key_range))
              : static_cast<std::int64_t>(harness::key_stream_at(
                    kind, stream_index++,
                    static_cast<std::uint64_t>(key_range))));
    }
    if (!cli.batch(server::opcode::insert, keys, results)) return false;
    remaining -= static_cast<std::int64_t>(n);
  }
  return true;
}

/// One grid cell: `connections` threads each keeping a `pipeline`-deep
/// window of point requests in flight for `duration` against either a
/// fresh in-process server or the --connect endpoint. Throughput is
/// client-counted completed responses; latencies come from the
/// in-process server's observer after the loops quiesce (0 in external
/// mode).
cell_result run_cell(const mix_spec& mix, unsigned connections,
                     unsigned pipeline, unsigned event_threads,
                     std::size_t shards, std::int64_t key_range,
                     std::chrono::milliseconds duration, std::uint64_t seed,
                     const endpoint& external,
                     harness::key_stream_kind kind) {
  set_type* set = nullptr;
  server::basic_server<set_type>* srv = nullptr;
  endpoint ep = external;
  if (!external.external()) {
    set = new set_type(shards, 0, key_range);
    // Pre-populate half the key space so gets actually hit — uniform
    // draw by default, or the requested adversarial insertion order.
    if (kind == harness::key_stream_kind::uniform) {
      pcg32 seed_rng(seed);
      for (std::int64_t filled = 0; filled < key_range / 2;) {
        if (set->insert(static_cast<std::int64_t>(
                seed_rng.next64() %
                static_cast<std::uint64_t>(key_range)))) {
          ++filled;
        }
      }
    } else {
      for (std::int64_t i = 0; i < key_range / 2; ++i) {
        set->insert(static_cast<std::int64_t>(harness::key_stream_at(
            kind, static_cast<std::uint64_t>(i),
            static_cast<std::uint64_t>(key_range))));
      }
    }

    server::server_config cfg;
    cfg.event_threads = event_threads;
    srv = new server::basic_server<set_type>(*set, cfg);
    if (!srv->start()) {
      std::fprintf(stderr, "bench_server: server failed to start\n");
      std::exit(1);
    }
    ep.host = "127.0.0.1";
    ep.port = srv->port();
  }

  cell_result r;
  {
    // The RTT floor: min over a quiet burst, before the load starts.
    server::client probe;
    if (probe.connect(ep.host, ep.port)) {
      (void)probe.ping_rtt_min(16, r.rtt_us);
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> completed{0};
  std::vector<std::thread> workers;
  workers.reserve(connections);
  for (unsigned c = 0; c < connections; ++c) {
    workers.emplace_back([&, c] {
      server::client cli;
      if (!cli.connect(ep.host, ep.port)) return;
      pcg32 rng = pcg32::for_thread(seed, c);
      std::uint64_t local = 0;
      std::vector<server::request> window(pipeline);
      while (!stop.load(std::memory_order_relaxed)) {
        for (auto& req : window) {
          const unsigned roll = rng.bounded(100);
          req.op = roll < mix.get_pct ? server::opcode::get
                   : roll < mix.get_pct + mix.insert_pct
                       ? server::opcode::insert
                       : server::opcode::erase;
          req.id = cli.next_id();
          req.key = static_cast<std::int64_t>(
              rng.next64() % static_cast<std::uint64_t>(key_range));
          if (!cli.send_request(req)) return;
        }
        server::response resp;
        for (unsigned i = 0; i < pipeline; ++i) {
          if (!cli.recv_response(resp)) return;
          ++local;
        }
        completed.fetch_add(local, std::memory_order_relaxed);
        local = 0;
      }
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(duration);
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  r.ops = completed.load();
  r.mops_per_sec = static_cast<double>(r.ops) / secs / 1e6;
  if (srv != nullptr) {
    srv->stop();
    srv->join();
    const obs::histogram lat = srv->latency().merged_all();
    r.p50_ns = lat.value_at_percentile(50);
    r.p99_ns = lat.value_at_percentile(99);
    r.p999_ns = lat.value_at_percentile(99.9);
    r.coalesced_groups = srv->stats().coalesced_groups.load();
    delete srv;
    delete set;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::flags flags(argc, argv);
  const bool csv_only = flags.has("csv");
  const auto millis = flags.get_int("millis", 200);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const auto key_range = flags.get_int("keyrange", 1 << 16);
  const auto shards =
      static_cast<std::size_t>(flags.get_int("shards", 8));
  const auto event_threads =
      static_cast<unsigned>(flags.get_int("threads", 2));
  const auto connections = flags.get_int_list("connections", {1, 4});
  const auto pipelines = flags.get_int_list("pipeline", {1, 16});
  const auto duration = std::chrono::milliseconds(millis);
  const std::string only_mix = flags.get("mix", "");

  harness::key_stream_kind kind = harness::key_stream_kind::uniform;
  const std::string keys_flag = flags.get("keys", "uniform");
  if (!harness::parse_key_stream(keys_flag, kind)) {
    std::fprintf(stderr,
                 "bench_server: --keys wants uniform|sequential|"
                 "bit_reversed|adaptive_attack, got '%s'\n",
                 keys_flag.c_str());
    return 1;
  }

  // --connect host:port drives an external lfbst_serve instead of
  // per-cell in-process servers (CI's telemetry smoke load generator).
  endpoint external;
  const std::string connect = flags.get("connect", "");
  if (!connect.empty()) {
    const std::size_t colon = connect.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == connect.size()) {
      std::fprintf(stderr,
                   "bench_server: --connect wants host:port, got '%s'\n",
                   connect.c_str());
      return 1;
    }
    external.host = connect.substr(0, colon);
    external.port = static_cast<std::uint16_t>(
        std::strtoul(connect.c_str() + colon + 1, nullptr, 10));
    if (!prepopulate_external(external, key_range, seed, kind)) {
      std::fprintf(stderr,
                   "bench_server: cannot reach/populate %s:%u\n",
                   external.host.c_str(),
                   static_cast<unsigned>(external.port));
      return 1;
    }
  }

  harness::text_table tbl({"study", "mix", "connections", "pipeline",
                           "event_threads", "shards", "ops", "mops_per_sec",
                           "rtt_us", "p50_ns", "p99_ns", "p999_ns",
                           "coalesced_groups"});

  if (!csv_only) {
    if (external.external()) {
      std::printf("=== TCP front-end: external server %s:%u (%lld keys) "
                  "===\n",
                  external.host.c_str(),
                  static_cast<unsigned>(external.port),
                  static_cast<long long>(key_range));
    } else {
      std::printf("=== TCP front-end over sharded NM-BST (%u event "
                  "threads, %zu shards, %lld keys) ===\n",
                  event_threads, shards,
                  static_cast<long long>(key_range));
    }
  }
  for (const mix_spec& mix : kMixes) {
    if (!only_mix.empty() && only_mix != mix.name) continue;
    for (const std::int64_t conns : connections) {
      for (const std::int64_t pipe : pipelines) {
        const cell_result r = run_cell(
            mix, static_cast<unsigned>(conns), static_cast<unsigned>(pipe),
            event_threads, shards, key_range, duration, seed, external,
            kind);
        tbl.add_row({"server", mix.name, std::to_string(conns),
                     std::to_string(pipe), std::to_string(event_threads),
                     std::to_string(shards), std::to_string(r.ops),
                     harness::format("%.4f", r.mops_per_sec),
                     std::to_string(r.rtt_us), std::to_string(r.p50_ns),
                     std::to_string(r.p99_ns), std::to_string(r.p999_ns),
                     std::to_string(r.coalesced_groups)});
        if (!csv_only) {
          std::printf("  %-10s conns=%-3lld pipeline=%-3lld %8.3f Mops/s  "
                      "rtt=%4llu us  p50=%6llu ns  p99=%7llu ns  "
                      "p999=%8llu ns\n",
                      mix.name, static_cast<long long>(conns),
                      static_cast<long long>(pipe), r.mops_per_sec,
                      static_cast<unsigned long long>(r.rtt_us),
                      static_cast<unsigned long long>(r.p50_ns),
                      static_cast<unsigned long long>(r.p99_ns),
                      static_cast<unsigned long long>(r.p999_ns));
        }
      }
    }
  }

  if (!csv_only) std::printf("\n=== CSV ===\n");
  tbl.print_csv(stdout);

  if (flags.has("json")) {
    const std::string path = flags.get("json", "server.json");
    obs::bench_report report("server");
    report.config.set("millis", millis);
    report.config.set("seed", seed);
    report.config.set("key_range", key_range);
    report.config.set("shards", static_cast<std::uint64_t>(shards));
    report.config.set("event_threads",
                      static_cast<std::uint64_t>(event_threads));
    report.config.set("external", external.external());
    report.config.set("keys", harness::key_stream_name(kind));
    report.results = obs::rows_from_table(tbl.header(), tbl.rows());
    if (!report.write_file(path)) return 1;
    if (!csv_only) std::printf("\nJSON report: %s\n", path.c_str());
  }
  return 0;
}
