// google-benchmark microbenchmarks: single-threaded per-operation cost
// of every algorithm at several tree sizes. Complements the throughput
// harnesses with statistically disciplined per-op latency numbers (the
// external-vs-internal path-length discussion of §5 is directly visible
// in the search timings).
//
// Two modes share one binary:
//   * default: google-benchmark, all its flags work
//     (--benchmark_filter=..., --benchmark_out=...);
//   * --json <path> [--ops N] [--seed S]: a fixed-work measurement
//     loop that writes an lfbst-bench-v1 report for the CI perf gate
//     (tools/check_perf_regression.py vs bench/baseline_micro_ops.json):
//       study "micro"   — ns/op per (algorithm, op, size), including a
//                         std::set reference row the gate normalizes
//                         against so absolute machine speed cancels;
//       study "atomics" — per-op allocation/atomic counts measured with
//                         the counting stats policy. Single-threaded and
//                         seeded, so these are exactly reproducible:
//                         any drift is a protocol change (Table 1);
//       study "restart_policy" — contended adjacent-leaf churn under
//                         restart::from_anchor vs restart::from_root,
//                         throughput plus the retry attribution
//                         counters (docs/PERF.md). The gate checks
//                         from_anchor does not regress vs from_root;
//       study "scan"    — ordered-scan throughput with and without
//                         concurrent writers, per reclaimer. Rows are
//                         self-checking (sorted, stable-complete); the
//                         gate fails on any violated scan invariant;
//       study "kary_zipf" — read-heavy Zipfian throughput, the multiway
//                         tree vs the NM-BST at the tuned fanout
//                         (docs/MULTIWAY.md). The gate's check_kary
//                         requires the multiway tree to hold its win on
//                         runners with >= 4 hardware threads (the
//                         report's config carries hardware_threads so
//                         the check can self-skip on small runners).
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/barrier.hpp"
#include "common/rng.hpp"
#include "harness/flags.hpp"
#include "harness/table.hpp"
#include "harness/zipf.hpp"
#include "lfbst/lfbst.hpp"
#include "obs/export.hpp"

namespace {

using namespace lfbst;

template <typename Tree>
void fill_to(Tree& tree, std::int64_t n, pcg32& rng, std::int64_t range) {
  std::int64_t filled = 0;
  while (filled < n) {
    if (tree.insert(static_cast<long>(rng.next64() % range))) ++filled;
  }
}

template <typename Tree>
void BM_Search(benchmark::State& state) {
  const std::int64_t size = state.range(0);
  const std::int64_t range = size * 2;
  Tree tree;
  pcg32 rng(42);
  fill_to(tree, size, rng, range);
  pcg32 qrng(43);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.contains(static_cast<long>(qrng.next64() % range)));
  }
  state.SetItemsProcessed(state.iterations());
}

template <typename Tree>
void BM_InsertErasePair(benchmark::State& state) {
  const std::int64_t size = state.range(0);
  const std::int64_t range = size * 2;
  Tree tree;
  pcg32 rng(42);
  fill_to(tree, size, rng, range);
  pcg32 qrng(44);
  for (auto _ : state) {
    const long k = static_cast<long>(qrng.next64() % range);
    if (tree.insert(k)) {
      benchmark::DoNotOptimize(tree.erase(k));
    } else {
      benchmark::DoNotOptimize(tree.erase(k));
      tree.insert(k);
    }
  }
  state.SetItemsProcessed(2 * state.iterations());
}

#define LFBST_REGISTER(tree_type, tag)                                   \
  BENCHMARK_TEMPLATE(BM_Search, tree_type)                               \
      ->Name("Search/" tag)                                              \
      ->Arg(1'000)                                                       \
      ->Arg(100'000);                                                    \
  BENCHMARK_TEMPLATE(BM_InsertErasePair, tree_type)                      \
      ->Name("InsertErasePair/" tag)                                     \
      ->Arg(1'000)                                                       \
      ->Arg(100'000)

LFBST_REGISTER(nm_tree<long>, "NM-BST");
LFBST_REGISTER(efrb_tree<long>, "EFRB-BST");
LFBST_REGISTER(hj_tree<long>, "HJ-BST");
LFBST_REGISTER(bcco_tree<long>, "BCCO-BST");
LFBST_REGISTER(dvy_tree<long>, "DVY-BST");
LFBST_REGISTER(coarse_tree<long>, "Coarse-BST");

using nm_epoch = nm_tree<long, std::less<long>, reclaim::epoch>;
LFBST_REGISTER(nm_epoch, "NM-BST-epoch");
// Observability overhead guard: the same tree with the obs::recording
// policy (striped counters + latency/seek histograms on every op). The
// delta vs the plain "NM-BST" rows is the full cost of metrics; compare
// with --benchmark_filter='NM-BST(-metrics)?/' and export JSON with
// --benchmark_out=<path> --benchmark_out_format=json.
using nm_metrics = nm_tree<long, std::less<long>, reclaim::leaky,
                           obs::recording>;
LFBST_REGISTER(nm_metrics, "NM-BST-metrics");
using nm_hazard = nm_tree<long, std::less<long>, reclaim::hazard>;
LFBST_REGISTER(nm_hazard, "NM-BST-hazard");
// Restart-policy ablation: the same tree with retry seeks restarting
// from the root (the paper's letter) instead of the default anchored
// local restart (the full version's optimization). Identical on the
// uncontended single-threaded paths measured here — the policy is only
// consulted after a failed CAS — so any delta in these rows is noise;
// the contended comparison lives in the "restart_policy" JSON study
// below and in bench_contention_window.
using nm_root = nm_tree<long, std::less<long>, reclaim::leaky, stats::none,
                        tag_policy::bts, void, atomics::native,
                        restart::from_root>;
LFBST_REGISTER(nm_root, "NM-BST-root");
using kst4 = kary_tree<long, 4>;
LFBST_REGISTER(kst4, "KST-4");
using kst16 = kary_tree<long, 16>;
LFBST_REGISTER(kst16, "KST-16");

// std::set as a familiar non-concurrent reference point.
class std_set_adapter {
 public:
  using key_type = long;
  static constexpr const char* algorithm_name = "std::set";
  bool contains(long k) const { return set_.count(k) > 0; }
  bool insert(long k) { return set_.insert(k).second; }
  bool erase(long k) { return set_.erase(k) > 0; }
  std::size_t size_slow() const { return set_.size(); }
  std::string validate() const { return ""; }

 private:
  std::set<long> set_;
};
LFBST_REGISTER(std_set_adapter, "std::set");

// --------------------------------------------------------------------
// --json mode: the perf gate's measurement loop. Fixed work instead of
// google-benchmark's adaptive iteration so the report shape (rows and
// columns) is identical on every machine.
// --------------------------------------------------------------------

template <typename Tree>
double measure_search_ns(std::int64_t size, std::uint64_t ops) {
  const std::int64_t range = size * 2;
  Tree tree;
  pcg32 rng(42);
  fill_to(tree, size, rng, range);
  pcg32 qrng(43);
  std::uint64_t hits = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < ops; ++i) {
    hits += tree.contains(static_cast<long>(qrng.next64() % range)) ? 1 : 0;
  }
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  benchmark::DoNotOptimize(hits);
  return static_cast<double>(ns) / static_cast<double>(ops);
}

template <typename Tree>
double measure_insert_erase_ns(std::int64_t size, std::uint64_t ops) {
  const std::int64_t range = size * 2;
  Tree tree;
  pcg32 rng(42);
  fill_to(tree, size, rng, range);
  pcg32 qrng(44);
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < ops; ++i) {
    const long k = static_cast<long>(qrng.next64() % range);
    if (tree.insert(k)) {
      benchmark::DoNotOptimize(tree.erase(k));
    } else {
      benchmark::DoNotOptimize(tree.erase(k));
      tree.insert(k);
    }
  }
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  return static_cast<double>(ns) / static_cast<double>(2 * ops);
}

// Mean allocations/atomics per successful op, counted with the
// thread-local counting policy over a seeded single-threaded run:
// bit-for-bit reproducible, so the gate compares them near-exactly.
struct atomic_costs {
  double insert_allocs = 0, insert_atomics = 0;
  double erase_allocs = 0, erase_atomics = 0;
};

template <typename Tree>
atomic_costs measure_atomics(std::uint64_t ops, std::uint64_t key_range,
                             std::uint64_t seed) {
  Tree tree;
  pcg32 rng(seed);
  std::uint64_t filled = 0;
  while (filled < key_range / 2) {
    if (tree.insert(static_cast<long>(rng.next64() % key_range))) ++filled;
  }
  std::uint64_t ok_i = 0, ok_e = 0, ia = 0, ix = 0, ea = 0, ex = 0;
  for (std::uint64_t i = 0; i < ops; ++i) {
    const long k = static_cast<long>(rng.next64() % key_range);
    auto before = stats::counting::snapshot();
    if (tree.insert(k)) {
      const auto d = stats::counting::delta(before);
      ++ok_i;
      ia += d.objects_allocated;
      ix += d.atomics();
    }
    const long k2 = static_cast<long>(rng.next64() % key_range);
    before = stats::counting::snapshot();
    if (tree.erase(k2)) {
      const auto d = stats::counting::delta(before);
      ++ok_e;
      ea += d.objects_allocated;
      ex += d.atomics();
    }
  }
  atomic_costs c;
  c.insert_allocs = static_cast<double>(ia) / static_cast<double>(ok_i);
  c.insert_atomics = static_cast<double>(ix) / static_cast<double>(ok_i);
  c.erase_allocs = static_cast<double>(ea) / static_cast<double>(ok_e);
  c.erase_atomics = static_cast<double>(ex) / static_cast<double>(ok_e);
  return c;
}

// Contended restart-policy sample: `threads` workers churn the same
// few adjacent leaves (insert/erase alternating) so injection CASes
// collide and cleanups contend — the regime where the anchored local
// restart pays. Fixed work per thread; counters come from the
// obs::recording instance so the report carries the retry attribution
// (local resumes vs root fallbacks) next to the throughput.
struct restart_policy_sample {
  double mops = 0;
  obs::metrics_snapshot counters;
};

template <typename Tree>
restart_policy_sample measure_restart_policy(unsigned threads,
                                             std::uint64_t ops_per_thread) {
  Tree tree;
  constexpr long kKeys = 8;
  for (long k = 0; k < kKeys; ++k) tree.insert(k);
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&tree, &go, ops_per_thread, t] {
      // Independent per-thread key streams over the same tiny range, so
      // threads genuinely collide on leaves and their shared edges.
      pcg32 rng(0x9e3779b9u + t);
      while (!go.load(std::memory_order_acquire)) {}
      for (std::uint64_t n = 0; n < ops_per_thread; ++n) {
        const long k = static_cast<long>(rng.bounded(kKeys));
        if (rng.bounded(2) != 0) {
          tree.insert(k);
        } else {
          tree.erase(k);
        }
      }
    });
  }
  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  restart_policy_sample s;
  s.mops = static_cast<double>(threads) *
           static_cast<double>(ops_per_thread) * 1e3 /
           static_cast<double>(ns);
  s.counters = tree.stats().counters().snapshot();
  return s;
}

// Concurrent-scan sample: writers churn the odd (CHURN) keys while the
// measuring thread runs fixed-count ordered scans; even (STABLE) keys
// are pre-inserted and never touched. The row is self-checking, not
// baseline-compared: `sorted` and `stable_complete` must be 1 in every
// row (tools/check_perf_regression.py check_scan enforces this), and
// with writers=0 the keys_per_scan is exactly the stable population —
// a deterministic count, so any drift is a scan-protocol change.
struct scan_sample {
  double mkeys_per_sec = 0;  // emitted keys per wall second, millions
  double keys_per_scan = 0;
  std::uint64_t scan_restarts = 0;
  bool sorted = true;
  bool stable_complete = true;
};

template <typename Tree>
scan_sample measure_scan(unsigned writer_threads, int scans,
                         long key_range) {
  Tree tree;
  for (long k = 0; k < key_range; k += 2) tree.insert(k);
  const std::uint64_t stable = static_cast<std::uint64_t>(key_range) / 2;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (unsigned t = 0; t < writer_threads; ++t) {
    writers.emplace_back([&tree, &stop, key_range, t] {
      pcg32 rng(0x2545F491u + t);
      while (!stop.load(std::memory_order_acquire)) {
        const long k =
            2 * static_cast<long>(
                    rng.bounded(static_cast<std::uint32_t>(key_range / 2))) +
            1;
        if (rng.bounded(2) != 0) {
          tree.insert(k);
        } else {
          tree.erase(k);
        }
      }
    });
  }
  scan_sample s;
  std::uint64_t emitted = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < scans; ++i) {
    const std::vector<long> got = tree.range_scan_closed(0, key_range - 1);
    emitted += got.size();
    std::uint64_t stable_seen = 0;
    for (std::size_t j = 0; j < got.size(); ++j) {
      if (j > 0 && got[j - 1] >= got[j]) s.sorted = false;
      if ((got[j] & 1) == 0) ++stable_seen;
    }
    if (stable_seen != stable) s.stable_complete = false;
  }
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  stop.store(true, std::memory_order_release);
  for (auto& w : writers) w.join();
  s.mkeys_per_sec =
      static_cast<double>(emitted) * 1e3 / static_cast<double>(ns);
  s.keys_per_scan = static_cast<double>(emitted) / scans;
  s.scan_restarts = tree.stats().counters().snapshot()
                        [obs::counter::scan_restarts];
  return s;
}

// Read-heavy Zipfian throughput: the multiway tree's target regime —
// hot descents fit a couple of cache lines per level, so the shallower
// tree wins on exactly the traffic a skewed read-mostly workload
// generates. Fixed duration, pre-drawn key stream (the Zipf inverse
// transform would otherwise dominate), 80% contains / 20% writes.
template <typename Tree>
double measure_zipf_read_mops(std::uint64_t key_range, double theta,
                              unsigned thread_count, std::uint64_t millis,
                              std::uint64_t seed) {
  Tree tree;
  pcg32 fill(seed);
  std::uint64_t filled = 0;
  while (filled < key_range / 2) {
    if (tree.insert(static_cast<long>(fill.next64() % key_range))) ++filled;
  }
  const harness::zipf_generator zipf(key_range, theta);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total_ops{0};
  spin_barrier barrier(thread_count + 1);
  std::vector<std::thread> workers;
  for (unsigned tid = 0; tid < thread_count; ++tid) {
    workers.emplace_back([&, tid] {
      pcg32 rng = pcg32::for_thread(seed, tid);
      constexpr std::size_t kStream = 1u << 16;
      std::vector<long> keys(kStream);
      for (auto& k : keys) {
        k = static_cast<long>(zipf.scramble(zipf(rng)));
      }
      std::uint64_t n = 0;
      std::size_t i = 0;
      std::uint64_t hits = 0;
      barrier.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        const long key = keys[i];
        i = (i + 1 == kStream) ? 0 : i + 1;
        const auto roll = rng.bounded(10);
        if (roll == 0) {
          (void)tree.insert(key);
        } else if (roll == 1) {
          (void)tree.erase(key);
        } else {
          hits += tree.contains(key) ? 1 : 0;
        }
        ++n;
      }
      benchmark::DoNotOptimize(hits);
      total_ops.fetch_add(n);
    });
  }
  barrier.arrive_and_wait();
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(millis));
  stop.store(true);
  for (auto& w : workers) w.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return static_cast<double>(total_ops.load()) / secs / 1e6;
}

int run_json_mode(const lfbst::bench::flags& flags) {
  const std::string path = flags.get("json", "micro_ops.json");
  const auto ops = static_cast<std::uint64_t>(flags.get_int("ops", 200'000));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));

  harness::text_table micro(
      {"study", "algorithm", "op", "size", "ns_per_op"});
  auto micro_rows = [&]<typename Tree>(const char* name) {
    for (const std::int64_t size : {std::int64_t{1'000},
                                    std::int64_t{65'536}}) {
      micro.add_row({"micro", name, "search", std::to_string(size),
                     harness::format("%.3f",
                                     measure_search_ns<Tree>(size, ops))});
      micro.add_row(
          {"micro", name, "insert_erase", std::to_string(size),
           harness::format("%.3f",
                           measure_insert_erase_ns<Tree>(size, ops / 2))});
    }
  };
  micro_rows.template operator()<nm_tree<long>>("NM-BST");
  micro_rows.template operator()<nm_root>("NM-BST-root");
  micro_rows.template operator()<efrb_tree<long>>("EFRB-BST");
  micro_rows.template operator()<hj_tree<long>>("HJ-BST");
  micro_rows.template operator()<bcco_tree<long>>("BCCO-BST");
  micro_rows.template operator()<shard::sharded_set<nm_tree<long>>>(
      "Sharded/NM-BST");
  // Shape-resilience adapter overhead on uniform streams (one
  // xorshift-multiply round per op): the check_shape perf-gate check
  // holds these within 5% of their unscrambled counterparts.
  micro_rows.template operator()<scrambled_set<nm_tree<long>>>(
      "Scrambled/NM-BST");
  micro_rows.template
  operator()<scrambled_set<shard::sharded_set<nm_tree<long>>>>(
      "Scrambled/Sharded");
  micro_rows.template operator()<std_set_adapter>("std::set");
  // The multiway tree at the tuned fanout, across its full reclaimer ×
  // restart grid — the policy-parity claim (docs/MULTIWAY.md) made
  // measurable: every combination is a working, benched configuration.
  micro_rows.template operator()<kary_tree<long>>("KST");
  micro_rows.template operator()<
      kary_tree<long, 8, std::less<long>, reclaim::epoch>>("KST-epoch");
  micro_rows.template operator()<
      kary_tree<long, 8, std::less<long>, reclaim::hazard>>("KST-hazard");
  micro_rows.template operator()<
      kary_tree<long, 8, std::less<long>, reclaim::leaky, stats::none,
                atomics::native, restart::from_root>>("KST-root");
  micro_rows.template operator()<
      kary_tree<long, 8, std::less<long>, reclaim::epoch, stats::none,
                atomics::native, restart::from_root>>("KST-epoch-root");
  micro_rows.template operator()<
      kary_tree<long, 8, std::less<long>, reclaim::hazard, stats::none,
                atomics::native, restart::from_root>>("KST-hazard-root");

  harness::text_table atomics({"study", "algorithm", "allocs_per_insert",
                               "atomics_per_insert", "allocs_per_erase",
                               "atomics_per_erase"});
  using counting = stats::counting;
  auto atomics_row = [&]<typename Tree>(const char* name) {
    const atomic_costs c = measure_atomics<Tree>(ops / 4, 10'000, seed);
    atomics.add_row({"atomics", name,
                     harness::format("%.4f", c.insert_allocs),
                     harness::format("%.4f", c.insert_atomics),
                     harness::format("%.4f", c.erase_allocs),
                     harness::format("%.4f", c.erase_atomics)});
  };
  atomics_row.template operator()<
      nm_tree<long, std::less<long>, reclaim::leaky, counting>>("NM-BST");
  // The from_root ablation must pin the exact same Table 1 counts: the
  // restart policy is consulted only after a failed CAS, and this
  // measurement is single-threaded.
  atomics_row.template operator()<
      nm_tree<long, std::less<long>, reclaim::leaky, counting,
              tag_policy::bts, void, atomics::native, restart::from_root>>(
      "NM-BST-root");
  atomics_row.template operator()<
      efrb_tree<long, std::less<long>, reclaim::leaky, counting>>(
      "EFRB-BST");
  atomics_row.template operator()<
      hj_tree<long, std::less<long>, reclaim::leaky, counting>>("HJ-BST");
  // Multiway count pins (tests/multiway/kary_counts_test.cpp): REPLACE
  // is 2 allocs / 3 CAS, SPROUT K+2 allocs / 3 CAS, COALESCE 2 allocs /
  // 4 CAS — the measured averages mix these by structural frequency but
  // are seeded and single-threaded, hence reproducible.
  atomics_row.template operator()<
      kary_tree<long, 8, std::less<long>, reclaim::leaky, counting>>("KST");

  // Contended restart-policy ablation: same churn, both policies. The
  // perf gate checks from_anchor holds its own against from_root here
  // and that its local-resume counter is actually exercised.
  harness::text_table rp({"study", "policy", "threads", "mops",
                          "seek_restarts", "restarts_injection_fail",
                          "restarts_cleanup_mode", "seek_resumes_local",
                          "seek_anchor_fallbacks"});
  const unsigned rp_threads = 4;
  const std::uint64_t rp_ops = ops / rp_threads;
  auto rp_row = [&]<typename Tree>(const char* policy) {
    const restart_policy_sample s =
        measure_restart_policy<Tree>(rp_threads, rp_ops);
    auto c = [&s](obs::counter k) {
      return std::to_string(s.counters[k]);
    };
    rp.add_row({"restart_policy", policy, std::to_string(rp_threads),
                harness::format("%.3f", s.mops),
                c(obs::counter::seek_restarts),
                c(obs::counter::restarts_injection_fail),
                c(obs::counter::restarts_cleanup_mode),
                c(obs::counter::seek_resumes_local),
                c(obs::counter::seek_anchor_fallbacks)});
  };
  rp_row.template operator()<
      nm_tree<long, std::less<long>, reclaim::leaky, obs::recording,
              tag_policy::bts, void, atomics::native, restart::from_anchor>>(
      "from_anchor");
  rp_row.template operator()<
      nm_tree<long, std::less<long>, reclaim::leaky, obs::recording,
              tag_policy::bts, void, atomics::native, restart::from_root>>(
      "from_root");

  // Concurrent-scan study: self-checking rows (see measure_scan). One
  // uncontended row per reclaimer pins the deterministic key count;
  // the contended rows prove completeness/sortedness under real churn
  // on both the pinned (epoch) and validated (hazard) scan paths.
  harness::text_table scan({"study", "algorithm", "writers", "scans",
                            "mkeys_per_sec", "keys_per_scan",
                            "scan_restarts", "sorted", "stable_complete"});
  constexpr long kScanRange = 8'192;
  constexpr int kScans = 50;
  auto scan_row = [&]<typename Tree>(const char* name, unsigned writers) {
    const scan_sample s = measure_scan<Tree>(writers, kScans, kScanRange);
    scan.add_row({"scan", name, std::to_string(writers),
                  std::to_string(kScans),
                  harness::format("%.3f", s.mkeys_per_sec),
                  harness::format("%.1f", s.keys_per_scan),
                  std::to_string(s.scan_restarts),
                  s.sorted ? "1" : "0", s.stable_complete ? "1" : "0"});
  };
  using scan_epoch = nm_tree<long, std::less<long>, reclaim::epoch,
                             obs::recording>;
  using scan_hazard = nm_tree<long, std::less<long>, reclaim::hazard,
                              obs::recording>;
  scan_row.template operator()<scan_epoch>("NM-BST/epoch", 0);
  scan_row.template operator()<scan_epoch>("NM-BST/epoch", 2);
  scan_row.template operator()<scan_hazard>("NM-BST/hazard", 0);
  scan_row.template operator()<scan_hazard>("NM-BST/hazard", 2);
  scan_row.template operator()<
      kary_tree<long, 8, std::less<long>, reclaim::epoch, obs::recording>>(
      "KST/epoch", 0);
  scan_row.template operator()<
      kary_tree<long, 8, std::less<long>, reclaim::epoch, obs::recording>>(
      "KST/epoch", 2);
  scan_row.template operator()<
      kary_tree<long, 8, std::less<long>, reclaim::hazard, obs::recording>>(
      "KST/hazard", 0);
  scan_row.template operator()<
      kary_tree<long, 8, std::less<long>, reclaim::hazard, obs::recording>>(
      "KST/hazard", 2);

  // Read-heavy Zipf study: the multiway tree's headline claim, measured
  // in the regime it targets (theta 0.99 hot-spot reads at the tuned
  // fanout, tree big enough that depth matters). The NM row rides along
  // so check_kary can compare within this report; the comparison only
  // means anything with real parallelism, so the config carries the
  // runner's hardware_threads for the gate's self-skip.
  harness::text_table kary_zipf({"study", "algorithm", "threads", "theta",
                                 "mops_per_sec"});
  {
    const unsigned hw = std::thread::hardware_concurrency();
    const unsigned zipf_threads = hw >= 4 ? 4 : (hw > 0 ? hw : 1);
    constexpr std::uint64_t kZipfRange = 1u << 20;
    constexpr double kTheta = 0.99;
    const std::uint64_t zipf_millis = flags.get_int("zipf_millis", 300);
    auto zipf_row = [&]<typename Tree>(const char* name) {
      const double mops = measure_zipf_read_mops<Tree>(
          kZipfRange, kTheta, zipf_threads, zipf_millis, seed);
      kary_zipf.add_row({"kary_zipf", name, std::to_string(zipf_threads),
                         harness::format("%.2f", kTheta),
                         harness::format("%.3f", mops)});
    };
    zipf_row.template operator()<kary_tree<long>>("KST");
    zipf_row.template operator()<nm_tree<long>>("NM-BST");
    zipf_row.template operator()<efrb_tree<long>>("EFRB-BST");
    zipf_row.template operator()<hj_tree<long>>("HJ-BST");
  }

  obs::bench_report report("micro_ops");
  report.config.set("ops", ops);
  report.config.set("seed", seed);
  report.config.set(
      "hardware_threads",
      static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  report.results = obs::rows_from_table(micro.header(), micro.rows());
  const obs::json::value atomics_rows =
      obs::rows_from_table(atomics.header(), atomics.rows());
  for (const auto& row : atomics_rows.items()) report.add_result(row);
  const obs::json::value rp_rows = obs::rows_from_table(rp.header(), rp.rows());
  for (const auto& row : rp_rows.items()) report.add_result(row);
  const obs::json::value scan_rows =
      obs::rows_from_table(scan.header(), scan.rows());
  for (const auto& row : scan_rows.items()) report.add_result(row);
  const obs::json::value kary_zipf_rows =
      obs::rows_from_table(kary_zipf.header(), kary_zipf.rows());
  for (const auto& row : kary_zipf_rows.items()) report.add_result(row);
  if (!report.write_file(path)) return 1;
  std::printf("JSON report: %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json", 6) == 0) {
      return run_json_mode(lfbst::bench::flags(argc, argv));
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
