// google-benchmark microbenchmarks: single-threaded per-operation cost
// of every algorithm at several tree sizes. Complements the throughput
// harnesses with statistically disciplined per-op latency numbers (the
// external-vs-internal path-length discussion of §5 is directly visible
// in the search timings).
#include <benchmark/benchmark.h>

#include <set>

#include "common/rng.hpp"
#include "lfbst/lfbst.hpp"

namespace {

using namespace lfbst;

template <typename Tree>
void fill_to(Tree& tree, std::int64_t n, pcg32& rng, std::int64_t range) {
  std::int64_t filled = 0;
  while (filled < n) {
    if (tree.insert(static_cast<long>(rng.next64() % range))) ++filled;
  }
}

template <typename Tree>
void BM_Search(benchmark::State& state) {
  const std::int64_t size = state.range(0);
  const std::int64_t range = size * 2;
  Tree tree;
  pcg32 rng(42);
  fill_to(tree, size, rng, range);
  pcg32 qrng(43);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.contains(static_cast<long>(qrng.next64() % range)));
  }
  state.SetItemsProcessed(state.iterations());
}

template <typename Tree>
void BM_InsertErasePair(benchmark::State& state) {
  const std::int64_t size = state.range(0);
  const std::int64_t range = size * 2;
  Tree tree;
  pcg32 rng(42);
  fill_to(tree, size, rng, range);
  pcg32 qrng(44);
  for (auto _ : state) {
    const long k = static_cast<long>(qrng.next64() % range);
    if (tree.insert(k)) {
      benchmark::DoNotOptimize(tree.erase(k));
    } else {
      benchmark::DoNotOptimize(tree.erase(k));
      tree.insert(k);
    }
  }
  state.SetItemsProcessed(2 * state.iterations());
}

#define LFBST_REGISTER(tree_type, tag)                                   \
  BENCHMARK_TEMPLATE(BM_Search, tree_type)                               \
      ->Name("Search/" tag)                                              \
      ->Arg(1'000)                                                       \
      ->Arg(100'000);                                                    \
  BENCHMARK_TEMPLATE(BM_InsertErasePair, tree_type)                      \
      ->Name("InsertErasePair/" tag)                                     \
      ->Arg(1'000)                                                       \
      ->Arg(100'000)

LFBST_REGISTER(nm_tree<long>, "NM-BST");
LFBST_REGISTER(efrb_tree<long>, "EFRB-BST");
LFBST_REGISTER(hj_tree<long>, "HJ-BST");
LFBST_REGISTER(bcco_tree<long>, "BCCO-BST");
LFBST_REGISTER(dvy_tree<long>, "DVY-BST");
LFBST_REGISTER(coarse_tree<long>, "Coarse-BST");

using nm_epoch = nm_tree<long, std::less<long>, reclaim::epoch>;
LFBST_REGISTER(nm_epoch, "NM-BST-epoch");
// Observability overhead guard: the same tree with the obs::recording
// policy (striped counters + latency/seek histograms on every op). The
// delta vs the plain "NM-BST" rows is the full cost of metrics; compare
// with --benchmark_filter='NM-BST(-metrics)?/' and export JSON with
// --benchmark_out=<path> --benchmark_out_format=json.
using nm_metrics = nm_tree<long, std::less<long>, reclaim::leaky,
                           obs::recording>;
LFBST_REGISTER(nm_metrics, "NM-BST-metrics");
using nm_hazard = nm_tree<long, std::less<long>, reclaim::hazard>;
LFBST_REGISTER(nm_hazard, "NM-BST-hazard");
using kst4 = kary_tree<long, 4>;
LFBST_REGISTER(kst4, "KST-4");
using kst16 = kary_tree<long, 16>;
LFBST_REGISTER(kst16, "KST-16");

// std::set as a familiar non-concurrent reference point.
class std_set_adapter {
 public:
  using key_type = long;
  static constexpr const char* algorithm_name = "std::set";
  bool contains(long k) const { return set_.count(k) > 0; }
  bool insert(long k) { return set_.insert(k).second; }
  bool erase(long k) { return set_.erase(k) > 0; }
  std::size_t size_slow() const { return set_.size(); }
  std::string validate() const { return ""; }

 private:
  std::set<long> set_;
};
LFBST_REGISTER(std_set_adapter, "std::set");

}  // namespace
