// Ablation studies for the design choices DESIGN.md calls out:
//
//   --study=tagging   BTS vs CAS-only tagging (the paper's §1/§6 claim
//                     that the algorithm "can be easily modified to use
//                     only CAS" — at what cost?)
//   --study=reclaim   leaky (paper regime) vs epoch-based reclamation:
//                     the price of a production memory policy.
//   --study=fanout    the §6 k-ary generalization: fanout sweep of
//                     kary_tree against the binary NM tree.
//   --study=multileaf how often one cleanup CAS removes more than one
//                     pending delete (the Fig. 2 effect), measured by
//                     node accounting under concurrent deleting.
//
// Default: run all three with short budgets.
#include <atomic>
#include <cstdio>
#include <cstring>
#include <type_traits>
#include <string>
#include <thread>
#include <vector>

#include "harness/flags.hpp"
#include "common/barrier.hpp"
#include "common/rng.hpp"
#include "core/natarajan_tree.hpp"
#include "multiway/kary_tree.hpp"
#include "reclaim/hazard_reclaimer.hpp"
#include "harness/runner.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "obs/export.hpp"

namespace {

using namespace lfbst;
using namespace lfbst::harness;

/// Appends a study's table to the --json report, tagging every row with
/// the study name so all four studies share one flat results array.
void export_table(obs::bench_report* report, const char* study,
                  const text_table& tbl) {
  if (report == nullptr) return;
  std::vector<std::string> header{"study"};
  header.insert(header.end(), tbl.header().begin(), tbl.header().end());
  std::vector<std::vector<std::string>> rows;
  rows.reserve(tbl.rows().size());
  for (const auto& r : tbl.rows()) {
    std::vector<std::string> row{study};
    row.insert(row.end(), r.begin(), r.end());
    rows.push_back(std::move(row));
  }
  // Bind before iterating: range-for does not extend the life of a
  // temporary reached through a member call until C++23.
  const obs::json::value converted = obs::rows_from_table(header, rows);
  for (const auto& row : converted.items()) report->add_result(row);
}

template <typename Tree>
double throughput(std::uint64_t millis, std::uint64_t range,
                  unsigned threads, std::uint64_t seed) {
  Tree tree;
  workload_config cfg;
  cfg.key_range = range;
  cfg.mix = write_dominated;  // maximizes tagging/reclaim traffic
  cfg.threads = threads;
  cfg.duration = std::chrono::milliseconds(millis);
  cfg.seed = seed;
  return run_workload(tree, cfg).mops_per_second();
}

void study_tagging(std::uint64_t millis, std::uint64_t seed,
                   obs::bench_report* report) {
  std::printf("--- study: tagging (BTS vs CAS-only), write-dominated ---\n");
  text_table tbl({"key_range", "threads", "bts Mops/s", "cas_only Mops/s",
                  "bts/cas_only"});
  for (std::uint64_t range : {1'000ULL, 100'000ULL}) {
    for (unsigned threads : {1u, 4u}) {
      const double bts =
          throughput<nm_tree<long>>(millis, range, threads, seed);
      const double cas = throughput<
          nm_tree<long, std::less<long>, reclaim::leaky, stats::none,
                  tag_policy::cas_only>>(millis, range, threads, seed);
      tbl.add_row({std::to_string(range), std::to_string(threads),
                   format("%.3f", bts), format("%.3f", cas),
                   format("%.2fx", bts / cas)});
    }
  }
  tbl.print();
  export_table(report, "tagging", tbl);
  std::printf("Expected: near-parity uncontended; BTS pulls ahead as "
              "contention on the sibling word rises (one unconditional RMW "
              "vs a CAS retry loop).\n\n");
}

void study_reclaim(std::uint64_t millis, std::uint64_t seed,
                   obs::bench_report* report) {
  std::printf("--- study: reclamation (leaky vs epoch vs hazard), "
              "write-dominated ---\n");
  text_table tbl({"key_range", "threads", "leaky Mops/s", "epoch Mops/s",
                  "hazard Mops/s", "epoch cost", "hazard cost"});
  for (std::uint64_t range : {1'000ULL, 100'000ULL}) {
    for (unsigned threads : {1u, 4u}) {
      const double leaky =
          throughput<nm_tree<long>>(millis, range, threads, seed);
      const double epoch = throughput<
          nm_tree<long, std::less<long>, reclaim::epoch>>(millis, range,
                                                          threads, seed);
      const double hazard = throughput<
          nm_tree<long, std::less<long>, reclaim::hazard>>(millis, range,
                                                           threads, seed);
      tbl.add_row({std::to_string(range), std::to_string(threads),
                   format("%.3f", leaky), format("%.3f", epoch),
                   format("%.3f", hazard),
                   format("%.1f%%", 100.0 * (1.0 - epoch / leaky)),
                   format("%.1f%%", 100.0 * (1.0 - hazard / leaky))});
    }
  }
  tbl.print();
  export_table(report, "reclaim", tbl);
  std::printf("Expected: epoch costs one announcement per op plus retire "
              "bookkeeping; hazard pointers add a seq_cst store and a "
              "validating re-read per traversal step (steep, but garbage "
              "is bounded even if a thread parks forever). The paper "
              "measures everything in the leaky regime.\n\n");
}

void study_fanout(std::uint64_t millis, std::uint64_t seed,
                  obs::bench_report* report) {
  // §6 future work: k-ary generalization. Larger fanout = shorter paths
  // and cache-friendlier leaves, at the cost of fatter update copies.
  std::printf("--- study: k-ary fanout (kary_tree), mixed workload ---\n");
  text_table tbl({"key_range", "K=2 Mops/s", "K=4 Mops/s", "K=8 Mops/s",
                  "K=16 Mops/s", "NM-BST Mops/s"});
  for (std::uint64_t range : {10'000ULL, 1'000'000ULL}) {
    auto tp = [&](auto tag) {
      using tree_t = typename decltype(tag)::type;
      tree_t tree;
      workload_config cfg;
      cfg.key_range = range;
      cfg.mix = mixed;
      cfg.threads = 2;
      cfg.duration = std::chrono::milliseconds(millis);
      cfg.seed = seed;
      return run_workload(tree, cfg).mops_per_second();
    };
    tbl.add_row({std::to_string(range),
                 format("%.3f", tp(std::type_identity<kary_tree<long, 2>>{})),
                 format("%.3f", tp(std::type_identity<kary_tree<long, 4>>{})),
                 format("%.3f", tp(std::type_identity<kary_tree<long, 8>>{})),
                 format("%.3f", tp(std::type_identity<kary_tree<long, 16>>{})),
                 format("%.3f", tp(std::type_identity<nm_tree<long>>{}))});
  }
  tbl.print();
  export_table(report, "fanout", tbl);
  std::printf("Expected: fanout pays off as the key range (tree depth) "
              "grows; at small ranges the extra copying per update washes "
              "it out.\n\n");
}

void study_multileaf(std::uint64_t millis, std::uint64_t seed,
                     obs::bench_report* report) {
  // Under concurrent deletes on a small range, some ancestor CASes excise
  // chains (Fig. 2). We can't observe individual CASes from outside, but
  // node accounting exposes the effect: with E successful erases and
  // chain excision, the number of *cleanup CAS successes* is <= E; the
  // deficit is exactly the multi-leaf bonus. We measure it with the
  // counting stats policy: every erase costs 3 atomics uncontended, so
  // atomics-per-successful-erase *below* the contended baseline of
  // repeated re-seeks indicates chains being removed by others.
  std::printf("--- study: multi-leaf removal (Fig. 2 effect) ---\n");
  using counted =
      nm_tree<long, std::less<long>, reclaim::leaky, stats::counting>;
  counted tree;
  constexpr std::uint64_t kRange = 64;  // tiny: maximal delete overlap
  for (std::uint64_t k = 0; k < kRange; ++k) {
    tree.insert(static_cast<long>(k));
  }
  constexpr unsigned kThreads = 8;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> erases_ok{0}, inserts_ok{0}, helps{0},
      atomics{0};
  spin_barrier barrier(kThreads + 1);
  std::vector<std::thread> threads;
  for (unsigned tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      pcg32 rng = pcg32::for_thread(seed, tid);
      stats::counting::reset();
      std::uint64_t e = 0, i = 0;
      barrier.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        const long k = rng.bounded(kRange);
        if (rng.bounded(2) == 0) {
          e += tree.erase(k) ? 1 : 0;
        } else {
          i += tree.insert(k) ? 1 : 0;
        }
      }
      erases_ok.fetch_add(e);
      inserts_ok.fetch_add(i);
      helps.fetch_add(stats::counting::local().helps);
      atomics.fetch_add(stats::counting::local().atomics());
    });
  }
  barrier.arrive_and_wait();
  std::this_thread::sleep_for(std::chrono::milliseconds(millis));
  stop.store(true);
  for (auto& t : threads) t.join();

  const double atomics_per_modify =
      static_cast<double>(atomics.load()) /
      static_cast<double>(erases_ok.load() + inserts_ok.load());
  text_table tbl({"metric", "value"});
  tbl.add_row({"successful erases", std::to_string(erases_ok.load())});
  tbl.add_row({"successful inserts", std::to_string(inserts_ok.load())});
  tbl.add_row({"help invocations", std::to_string(helps.load())});
  tbl.add_row({"atomics per successful modify",
               format("%.2f", atomics_per_modify)});
  tbl.print();
  export_table(report, "multileaf", tbl);
  std::printf("Uncontended floor is 2.0 (insert 1 + delete 3 averaged); "
              "values close to it under this much contention mean failed "
              "CASes are being amortized by chain excision and helping.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bench::flags flags(argc, argv);
  const std::string study = flags.get("study", "all");
  const auto millis = static_cast<std::uint64_t>(flags.get_int("millis", 200));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 13));

  std::printf("=== NM-BST ablation studies ===\n\n");
  obs::bench_report report("ablation");
  report.config.set("study", study);
  report.config.set("millis", millis);
  report.config.set("seed", seed);
  obs::bench_report* rep = flags.has("json") ? &report : nullptr;
  if (study == "all" || study == "tagging") study_tagging(millis, seed, rep);
  if (study == "all" || study == "reclaim") study_reclaim(millis, seed, rep);
  if (study == "all" || study == "fanout") study_fanout(millis, seed, rep);
  if (study == "all" || study == "multileaf") {
    study_multileaf(millis, seed, rep);
  }
  if (rep != nullptr) {
    const std::string path = flags.get("json", "ablation.json");
    if (!report.write_file(path)) return 1;
    std::printf("JSON report: %s\n", path.c_str());
  }
  return 0;
}
