// Memory-footprint study: how much slab memory each reclamation policy
// holds across sustained churn — the space half of the reclamation
// trade-off (bench_ablation --study=reclaim shows the time half).
//
// The paper runs its 30-second Figure-4 points with reclamation off; at
// its write-dominated rates that regime retires hundreds of millions of
// nodes per run and simply keeps allocating. This bench makes the cost
// visible: leaky footprint grows linearly with retired work, epoch
// plateaus (amortized recycling, but unbounded while a pinned thread
// parks), hazard plateaus with a hard bound.
//
//   bench_memory [--keyrange 10000] [--rounds 40] [--threads 2]
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/barrier.hpp"
#include "common/rng.hpp"
#include "core/natarajan_tree.hpp"
#include "harness/flags.hpp"
#include "harness/table.hpp"
#include "obs/export.hpp"
#include "reclaim/hazard_reclaimer.hpp"

namespace {

using namespace lfbst;
using namespace lfbst::harness;

struct snapshot_row {
  std::uint64_t ops;
  std::size_t footprint_kib;
  std::size_t pending;
};

template <typename Tree>
std::vector<snapshot_row> churn(std::uint64_t key_range, unsigned rounds,
                                unsigned thread_count) {
  Tree tree;
  std::vector<snapshot_row> rows;
  std::atomic<std::uint64_t> total_ops{0};
  for (unsigned round = 0; round < rounds; ++round) {
    std::vector<std::thread> threads;
    spin_barrier barrier(thread_count);
    for (unsigned tid = 0; tid < thread_count; ++tid) {
      threads.emplace_back([&, tid, round] {
        pcg32 rng = pcg32::for_thread(round, tid);
        std::uint64_t n = 0;
        barrier.arrive_and_wait();
        for (int i = 0; i < 20'000; ++i) {
          const long k = static_cast<long>(rng.next64() % key_range);
          if (rng.bounded(2) == 0) {
            tree.insert(k);
          } else {
            tree.erase(k);
          }
          ++n;
        }
        total_ops.fetch_add(n);
      });
    }
    for (auto& t : threads) t.join();
    if ((round + 1) % (rounds / 4 == 0 ? 1 : rounds / 4) == 0) {
      rows.push_back({total_ops.load(), tree.footprint_bytes() / 1024,
                      tree.reclaimer_pending()});
    }
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::flags flags(argc, argv);
  const auto key_range =
      static_cast<std::uint64_t>(flags.get_int("keyrange", 10'000));
  const auto rounds = static_cast<unsigned>(flags.get_int("rounds", 40));
  const auto thread_count =
      static_cast<unsigned>(flags.get_int("threads", 2));

  std::printf("=== reclamation memory study ===\n%llu keys, %u threads, "
              "write-dominated churn; slab footprint sampled 4x per "
              "policy\n\n",
              (unsigned long long)key_range, thread_count);

  text_table tbl({"policy", "ops", "slab_kib", "pending_retire"});
  auto emit = [&](const char* name, const std::vector<snapshot_row>& rows) {
    for (const auto& r : rows) {
      tbl.add_row({name, std::to_string(r.ops), std::to_string(r.footprint_kib),
                   std::to_string(r.pending)});
    }
  };
  emit("leaky",
       churn<nm_tree<long>>(key_range, rounds, thread_count));
  emit("epoch", churn<nm_tree<long, std::less<long>, reclaim::epoch>>(
                    key_range, rounds, thread_count));
  emit("hazard", churn<nm_tree<long, std::less<long>, reclaim::hazard>>(
                     key_range, rounds, thread_count));
  tbl.print();

  if (flags.has("json")) {
    const std::string path = flags.get("json", "memory.json");
    obs::bench_report report("memory");
    report.config.set("keyrange", key_range);
    report.config.set("rounds", rounds);
    report.config.set("threads", thread_count);
    report.results = obs::rows_from_table(tbl.header(), tbl.rows());
    if (!report.write_file(path)) return 1;
    std::printf("\nJSON report: %s\n", path.c_str());
  }

  std::printf("\nReading: leaky grows without bound (the paper's regime — "
              "fine for 30 s runs, fatal for services); epoch and hazard "
              "plateau. Hazard additionally *bounds* pending retirements; "
              "epoch's pending can spike while any thread sits pinned.\n");
  return 0;
}
