// Skewed-access extension study: Zipfian keys concentrate operations on
// a few hot keys, manufacturing the high-contention regime the paper's
// §4 names as NM's strength ("contention is high — tree size is small or
// workload is write-dominated") without shrinking the tree. Sweeping the
// skew parameter shows each algorithm's sensitivity to hot-spot
// contention at a fixed tree size.
//
// The second study quantifies the adversarial-shape pathology
// (docs/RESILIENCE.md): key *order*, not key skew. An external BST
// under a sequential or attacker-chosen insertion stream degenerates
// to an O(n) spine; the seek_depth rows measure p50/p99/max seek depth
// per (stream, algorithm, scramble) arm so the perf gate
// (tools/check_perf_regression.py check_shape) can verify both that
// the pathology is real unscrambled and that the key_scramble.hpp
// bijection bounds it.
//
//   bench_skew [--keyrange N] [--threads N] [--millis N]
//              [--thetas 0,50,90,99]   (theta × 100)
//              [--shape-n N] [--shape-ops N] [--shape-shards N]
//              [--streams uniform,sequential,bit_reversed,adaptive_attack]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "common/barrier.hpp"
#include "common/rng.hpp"
#include "core/key_scramble.hpp"
#include "harness/algorithms.hpp"
#include "harness/flags.hpp"
#include "harness/key_streams.hpp"
#include "harness/table.hpp"
#include "harness/zipf.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "shard/sharded_set.hpp"

namespace {

using namespace lfbst;
using namespace lfbst::harness;

template <typename Tree>
double zipf_throughput(std::uint64_t key_range, double theta,
                       unsigned thread_count, std::uint64_t millis,
                       std::uint64_t seed) {
  Tree tree;
  // Pre-populate uniformly to half the range (same regime as Fig. 4).
  pcg32 fill(seed);
  std::uint64_t filled = 0;
  while (filled < key_range / 2) {
    if (tree.insert(static_cast<long>(fill.next64() % key_range))) {
      ++filled;
    }
  }
  const zipf_generator zipf(key_range, theta);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ops{0};
  spin_barrier barrier(thread_count + 1);
  std::vector<std::thread> threads;
  for (unsigned tid = 0; tid < thread_count; ++tid) {
    threads.emplace_back([&, tid] {
      pcg32 rng = pcg32::for_thread(seed, tid);
      // Pre-draw the key stream: the Zipf inverse transform costs two
      // pow() calls per draw, which would otherwise dominate the
      // measurement and flatten the comparison.
      constexpr std::size_t kStream = 1u << 18;
      std::vector<long> keys(kStream);
      for (auto& k : keys) {
        k = static_cast<long>(zipf.scramble(zipf(rng)));
      }
      std::uint64_t n = 0;
      std::size_t i = 0;
      barrier.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        const long key = keys[i];
        i = (i + 1 == kStream) ? 0 : i + 1;
        if (rng.bounded(2) == 0) {  // write-dominated 50/50
          (void)tree.insert(key);
        } else {
          (void)tree.erase(key);
        }
        ++n;
      }
      ops.fetch_add(n);
    });
  }
  barrier.arrive_and_wait();
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(millis));
  stop.store(true);
  for (auto& t : threads) t.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return static_cast<double>(ops.load()) / secs / 1e6;
}

// --- seek-depth (shape) study -------------------------------------------

/// Merged seek-depth histogram of any instrumented set: a plain
/// recording tree exposes stats(), the sharded front-end (and the
/// scrambled adapter over either) merges across shards.
template <typename Set>
obs::histogram seek_depth_of(const Set& set) {
  if constexpr (requires { set.merged_seek_depth_histogram(); }) {
    return set.merged_seek_depth_histogram();
  } else {
    return set.stats().seek_depth_histogram();
  }
}

struct shape_point {
  double mops = 0;
  std::uint64_t depth_p50 = 0;
  std::uint64_t depth_p99 = 0;
  std::uint64_t depth_max = 0;
};

/// Builds the set from `kind`'s insertion order, then probes present
/// keys in pseudorandom order. Depth percentiles are taken over the
/// probe phase only (histogram delta), so they describe the *final*
/// shape rather than averaging in the smaller trees the build phase
/// walked through.
template <typename Set>
shape_point measure_shape(Set& set, key_stream_kind kind, std::uint64_t n,
                          std::uint64_t probe_ops, std::uint64_t seed) {
  std::vector<long> keys;
  keys.reserve(n);
  if (kind == key_stream_kind::uniform) {
    pcg32 rng(seed);
    const std::uint64_t domain = key_stream_domain(kind, n) * 4;
    while (keys.size() < n) {
      const long k = static_cast<long>(rng.next64() % domain);
      if (set.insert(k)) keys.push_back(k);
    }
  } else {
    for (std::uint64_t i = 0; i < n; ++i) {
      const long k = static_cast<long>(key_stream_at(kind, i, n));
      if (set.insert(k)) keys.push_back(k);
    }
  }
  const obs::histogram before = seek_depth_of(set);
  pcg32 probe(seed ^ 0x5EEDu);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < probe_ops; ++i) {
    (void)set.contains(keys[probe.next64() % keys.size()]);
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const obs::histogram depth = seek_depth_of(set).delta_since(before);
  shape_point p;
  p.mops = static_cast<double>(probe_ops) / secs / 1e6;
  p.depth_p50 = depth.value_at_percentile(50.0);
  p.depth_p99 = depth.value_at_percentile(99.0);
  p.depth_max = depth.max();
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::flags flags(argc, argv);
  const auto key_range =
      static_cast<std::uint64_t>(flags.get_int("keyrange", 100'000));
  const auto thread_count =
      static_cast<unsigned>(flags.get_int("threads", 4));
  const auto millis = static_cast<std::uint64_t>(flags.get_int("millis", 200));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 17));
  const auto thetas = flags.get_int_list("thetas", {0, 50, 90, 99});

  std::printf("=== skewed-access study (Zipfian keys, write-dominated) "
              "===\n%llu keys, %u threads, %llu ms per point; theta 0 = "
              "uniform, 0.99 = YCSB-hot\n\n",
              static_cast<unsigned long long>(key_range), thread_count,
              static_cast<unsigned long long>(millis));

  std::vector<std::string> header{"theta"};
  std::vector<std::vector<std::string>> rows;
  for (const auto t100 : thetas) {
    rows.push_back({harness::format("%.2f", static_cast<double>(t100) / 100)});
  }
  auto measure_column = [&]<typename Tree>() {
    header.push_back(Tree::algorithm_name);
    for (std::size_t i = 0; i < thetas.size(); ++i) {
      const double theta = static_cast<double>(thetas[i]) / 100.0;
      rows[i].push_back(harness::format(
          "%.3f", zipf_throughput<Tree>(key_range, theta, thread_count,
                                        millis, seed)));
    }
  };
  for_each_paper_algorithm<long>(measure_column);
  // The cache-conscious multiway contender, side by side with the
  // paper's roster (tuned default fanout; docs/MULTIWAY.md).
  measure_column.template operator()<kary_tree<long>>();

  text_table tbl(header);
  for (auto& r : rows) tbl.add_row(std::move(r));
  tbl.print();

  // --- seek-depth (shape) study -----------------------------------------
  const auto shape_n =
      static_cast<std::uint64_t>(flags.get_int("shape-n", 16384));
  const auto shape_ops =
      static_cast<std::uint64_t>(flags.get_int("shape-ops", 16384));
  const auto shape_shards =
      static_cast<std::size_t>(flags.get_int("shape-shards", 8));
  std::vector<key_stream_kind> streams;
  {
    const std::string list = flags.get(
        "streams", "uniform,sequential,bit_reversed,adaptive_attack");
    std::size_t start = 0;
    while (start <= list.size()) {
      const std::size_t comma = list.find(',', start);
      const std::string name =
          list.substr(start, comma == std::string::npos ? std::string::npos
                                                        : comma - start);
      key_stream_kind kind{};
      if (!parse_key_stream(name, kind)) {
        std::fprintf(stderr, "unknown key stream: %s\n", name.c_str());
        return 1;
      }
      streams.push_back(kind);
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }

  std::printf("\n=== seek-depth (shape) study: adversarial key streams "
              "===\n%llu keys per arm, %llu probe ops, single thread; "
              "scramble = key_scramble.hpp boundary bijection\n\n",
              static_cast<unsigned long long>(shape_n),
              static_cast<unsigned long long>(shape_ops));

  using rec_nm =
      nm_tree<long, std::less<long>, reclaim::epoch, obs::recording>;
  using rec_efrb =
      efrb_tree<long, std::less<long>, reclaim::epoch, obs::recording>;
  using rec_kst = kary_tree<long, multiway::default_fanout<long>,
                            std::less<long>, reclaim::epoch, obs::recording>;
  using rec_sharded = shard::sharded_set<rec_nm>;

  text_table shape({"study", "stream", "algorithm", "scramble", "n",
                    "shards", "mops", "depth_p50", "depth_p99",
                    "depth_max"});
  auto shape_row = [&](key_stream_kind kind, const char* algo, bool scrambled,
                       std::size_t shard_count, auto& set) {
    const shape_point p =
        measure_shape(set, kind, shape_n, shape_ops, seed);
    shape.add_row({"seek_depth", key_stream_name(kind), algo,
                   scrambled ? "1" : "0",
                   harness::format("%llu",
                                   static_cast<unsigned long long>(shape_n)),
                   harness::format("%zu", shard_count),
                   harness::format("%.3f", p.mops),
                   harness::format("%llu", static_cast<unsigned long long>(
                                               p.depth_p50)),
                   harness::format("%llu", static_cast<unsigned long long>(
                                               p.depth_p99)),
                   harness::format("%llu", static_cast<unsigned long long>(
                                               p.depth_max))});
  };
  for (const key_stream_kind kind : streams) {
    // Raw sharded arms partition the stream's own domain so the attack
    // exercises every shard (the per-shard-spine regime the merged
    // histograms used to hide); scrambled arms span the full key
    // domain, where the bijection sends every stream.
    const auto domain = static_cast<long>(
        key_stream_domain(kind, shape_n) *
        (kind == key_stream_kind::uniform ? 4 : 1));
    {
      rec_nm t;
      shape_row(kind, "NM-BST", false, 1, t);
    }
    {
      scrambled_set<rec_nm> t(seed);
      shape_row(kind, "NM-BST", true, 1, t);
    }
    {
      rec_efrb t;
      shape_row(kind, "EFRB-BST", false, 1, t);
    }
    {
      scrambled_set<rec_efrb> t(seed);
      shape_row(kind, "EFRB-BST", true, 1, t);
    }
    {
      rec_kst t;
      shape_row(kind, "KST", false, 1, t);
    }
    {
      scrambled_set<rec_kst> t(seed);
      shape_row(kind, "KST", true, 1, t);
    }
    {
      rec_sharded t(shape_shards, 0, domain);
      shape_row(kind, "Sharded", false, shape_shards, t);
    }
    {
      scrambled_set<rec_sharded> t(
          seed, shard::range_router<long>(shape_shards));
      shape_row(kind, "Sharded", true, shape_shards, t);
    }
  }
  shape.print();

  if (flags.has("json")) {
    const std::string path = flags.get("json", "skew.json");
    obs::bench_report report("skew");
    report.config.set("keyrange", key_range);
    report.config.set("threads", thread_count);
    report.config.set("millis", millis);
    report.config.set("seed", seed);
    report.config.set("shape_n", shape_n);
    report.config.set("shape_ops", shape_ops);
    report.config.set("shape_shards",
                      static_cast<std::uint64_t>(shape_shards));
    report.results = obs::rows_from_table(tbl.header(), tbl.rows());
    const obs::json::value shape_rows =
        obs::rows_from_table(shape.header(), shape.rows());
    for (const auto& row : shape_rows.items()) report.add_result(row);
    if (!report.write_file(path)) return 1;
    std::printf("\nJSON report: %s\n", path.c_str());
  }

  std::printf("\nReading: rising skew concentrates modify traffic on hot "
              "leaves; the algorithms with the smallest contention window "
              "and fewest atomics per modify degrade least.\n");
  return 0;
}
