// Skewed-access extension study: Zipfian keys concentrate operations on
// a few hot keys, manufacturing the high-contention regime the paper's
// §4 names as NM's strength ("contention is high — tree size is small or
// workload is write-dominated") without shrinking the tree. Sweeping the
// skew parameter shows each algorithm's sensitivity to hot-spot
// contention at a fixed tree size.
//
//   bench_skew [--keyrange N] [--threads N] [--millis N]
//              [--thetas 0,50,90,99]   (theta × 100)
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/barrier.hpp"
#include "common/rng.hpp"
#include "harness/algorithms.hpp"
#include "harness/flags.hpp"
#include "harness/table.hpp"
#include "harness/zipf.hpp"
#include "obs/export.hpp"

namespace {

using namespace lfbst;
using namespace lfbst::harness;

template <typename Tree>
double zipf_throughput(std::uint64_t key_range, double theta,
                       unsigned thread_count, std::uint64_t millis,
                       std::uint64_t seed) {
  Tree tree;
  // Pre-populate uniformly to half the range (same regime as Fig. 4).
  pcg32 fill(seed);
  std::uint64_t filled = 0;
  while (filled < key_range / 2) {
    if (tree.insert(static_cast<long>(fill.next64() % key_range))) {
      ++filled;
    }
  }
  const zipf_generator zipf(key_range, theta);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ops{0};
  spin_barrier barrier(thread_count + 1);
  std::vector<std::thread> threads;
  for (unsigned tid = 0; tid < thread_count; ++tid) {
    threads.emplace_back([&, tid] {
      pcg32 rng = pcg32::for_thread(seed, tid);
      // Pre-draw the key stream: the Zipf inverse transform costs two
      // pow() calls per draw, which would otherwise dominate the
      // measurement and flatten the comparison.
      constexpr std::size_t kStream = 1u << 18;
      std::vector<long> keys(kStream);
      for (auto& k : keys) {
        k = static_cast<long>(zipf.scramble(zipf(rng)));
      }
      std::uint64_t n = 0;
      std::size_t i = 0;
      barrier.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        const long key = keys[i];
        i = (i + 1 == kStream) ? 0 : i + 1;
        if (rng.bounded(2) == 0) {  // write-dominated 50/50
          (void)tree.insert(key);
        } else {
          (void)tree.erase(key);
        }
        ++n;
      }
      ops.fetch_add(n);
    });
  }
  barrier.arrive_and_wait();
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(millis));
  stop.store(true);
  for (auto& t : threads) t.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return static_cast<double>(ops.load()) / secs / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::flags flags(argc, argv);
  const auto key_range =
      static_cast<std::uint64_t>(flags.get_int("keyrange", 100'000));
  const auto thread_count =
      static_cast<unsigned>(flags.get_int("threads", 4));
  const auto millis = static_cast<std::uint64_t>(flags.get_int("millis", 200));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 17));
  const auto thetas = flags.get_int_list("thetas", {0, 50, 90, 99});

  std::printf("=== skewed-access study (Zipfian keys, write-dominated) "
              "===\n%llu keys, %u threads, %llu ms per point; theta 0 = "
              "uniform, 0.99 = YCSB-hot\n\n",
              static_cast<unsigned long long>(key_range), thread_count,
              static_cast<unsigned long long>(millis));

  std::vector<std::string> header{"theta"};
  std::vector<std::vector<std::string>> rows;
  for (const auto t100 : thetas) {
    rows.push_back({harness::format("%.2f", static_cast<double>(t100) / 100)});
  }
  auto measure_column = [&]<typename Tree>() {
    header.push_back(Tree::algorithm_name);
    for (std::size_t i = 0; i < thetas.size(); ++i) {
      const double theta = static_cast<double>(thetas[i]) / 100.0;
      rows[i].push_back(harness::format(
          "%.3f", zipf_throughput<Tree>(key_range, theta, thread_count,
                                        millis, seed)));
    }
  };
  for_each_paper_algorithm<long>(measure_column);
  // The cache-conscious multiway contender, side by side with the
  // paper's roster (tuned default fanout; docs/MULTIWAY.md).
  measure_column.template operator()<kary_tree<long>>();

  text_table tbl(header);
  for (auto& r : rows) tbl.add_row(std::move(r));
  tbl.print();

  if (flags.has("json")) {
    const std::string path = flags.get("json", "skew.json");
    obs::bench_report report("skew");
    report.config.set("keyrange", key_range);
    report.config.set("threads", thread_count);
    report.config.set("millis", millis);
    report.config.set("seed", seed);
    report.results = obs::rows_from_table(tbl.header(), tbl.rows());
    if (!report.write_file(path)) return 1;
    std::printf("\nJSON report: %s\n", path.c_str());
  }

  std::printf("\nReading: rising skew concentrates modify traffic on hot "
              "leaves; the algorithms with the smallest contention window "
              "and fewest atomics per modify degrade least.\n");
  return 0;
}
