// Quantifies the §5 "contention window" discussion: operation pairs that
// touch *disjoint edges* can run concurrently in the NM tree but collide
// in EFRB, because EFRB flags whole nodes (an insert owns the parent; a
// delete owns parent + grandparent).
//
// Workload: pairs of threads repeatedly modify adjacent keys that share
// a parent/grandparent region — e.g. insert(4k)/insert(4k+2) under the
// same subtree, and delete/delete on keys whose EFRB grandparent
// coincides. Throughput per algorithm shows how much the node-level
// locking costs; the paper's Figure 5 examples (insert(40)+insert(60),
// delete(25)+delete(125)) are the template.
//
// The NM tree is measured under both restart policies (docs/PERF.md):
// restart::from_anchor (default; retry seeks resume from the recorded
// ancestor edge) and restart::from_root (the letter's full restart).
// All trees carry obs::recording, so every row reports the retry
// attribution counters next to its throughput — under contention the
// from_anchor row shows where its retries resumed (local vs root
// fallback), and the from_root row pins both at zero.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "baselines/efrb_tree.hpp"
#include "harness/flags.hpp"
#include "common/barrier.hpp"
#include "common/rng.hpp"
#include "core/natarajan_tree.hpp"
#include "core/restart_policy.hpp"
#include "harness/table.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace lfbst;

using nm_anchor = nm_tree<long, std::less<long>, reclaim::leaky,
                          obs::recording, tag_policy::bts, void,
                          atomics::native, restart::from_anchor>;
using nm_root = nm_tree<long, std::less<long>, reclaim::leaky,
                        obs::recording, tag_policy::bts, void,
                        atomics::native, restart::from_root>;
using efrb_rec =
    efrb_tree<long, std::less<long>, reclaim::leaky, obs::recording>;

struct window_sample {
  double mops = 0;
  obs::metrics_snapshot counters;
};

/// Two threads hammer keys that are siblings in key space (2k, 2k+1
/// style adjacency ⇒ adjacent leaves ⇒ shared parent region). Returns
/// combined Mops/s plus the tree's own counter attribution.
template <typename Tree>
window_sample adjacent_pair_throughput(std::uint64_t millis,
                                       std::uint64_t pairs,
                                       std::uint64_t seed) {
  Tree tree;
  // Dense base structure: even keys permanently present as anchors.
  for (std::uint64_t k = 0; k < pairs * 4; k += 2) {
    tree.insert(static_cast<long>(k));
  }
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total_ops{0};
  spin_barrier barrier(3);
  std::vector<std::thread> threads;
  for (unsigned tid = 0; tid < 2; ++tid) {
    threads.emplace_back([&, tid] {
      pcg32 rng = pcg32::for_thread(seed, tid);
      std::uint64_t ops = 0;
      barrier.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        // Thread 0 churns keys ≡1 (mod 4), thread 1 keys ≡3 (mod 4):
        // always disjoint keys, always adjacent leaves.
        const std::uint64_t pair = rng.bounded(static_cast<std::uint32_t>(pairs));
        const long k = static_cast<long>(pair * 4 + 1 + 2 * tid);
        if ((ops & 1) == 0) {
          tree.insert(k);
        } else {
          tree.erase(k);
        }
        ++ops;
      }
      total_ops.fetch_add(ops);
    });
  }
  barrier.arrive_and_wait();
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(millis));
  stop.store(true);
  for (auto& t : threads) t.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  window_sample s;
  s.mops = static_cast<double>(total_ops.load()) / secs / 1e6;
  s.counters = tree.stats().counters().snapshot();
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::flags flags(argc, argv);
  const auto millis = static_cast<std::uint64_t>(flags.get_int("millis", 300));
  const auto pairs = static_cast<std::uint64_t>(flags.get_int("pairs", 64));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 11));

  std::printf("=== Contention window microbench (paper §5) ===\n"
              "2 modifier threads on adjacent-leaf keys; %llu pairs, "
              "%llu ms\nDisjoint-edge operations: NM admits them "
              "concurrently, EFRB serializes on shared flagged nodes.\n\n",
              static_cast<unsigned long long>(pairs),
              static_cast<unsigned long long>(millis));

  const window_sample nm =
      adjacent_pair_throughput<nm_anchor>(millis, pairs, seed);
  const window_sample nm_r =
      adjacent_pair_throughput<nm_root>(millis, pairs, seed);
  const window_sample efrb =
      adjacent_pair_throughput<efrb_rec>(millis, pairs, seed);

  harness::text_table tbl({"algorithm", "policy", "Mops/s", "vs EFRB",
                           "seek_restarts", "restarts_injection_fail",
                           "restarts_cleanup_mode", "seek_resumes_local",
                           "seek_anchor_fallbacks"});
  auto add = [&tbl, &efrb](const char* name, const char* policy,
                           const window_sample& s) {
    auto c = [&s](obs::counter k) { return std::to_string(s.counters[k]); };
    tbl.add_row({name, policy, harness::format("%.3f", s.mops),
                 harness::format("%.2fx", s.mops / efrb.mops),
                 c(obs::counter::seek_restarts),
                 c(obs::counter::restarts_injection_fail),
                 c(obs::counter::restarts_cleanup_mode),
                 c(obs::counter::seek_resumes_local),
                 c(obs::counter::seek_anchor_fallbacks)});
  };
  add("NM-BST", "from_anchor", nm);
  add("NM-BST", "from_root", nm_r);
  add("EFRB-BST", "-", efrb);
  tbl.print();

  if (flags.has("json")) {
    const std::string path = flags.get("json", "contention_window.json");
    obs::bench_report report("contention_window");
    report.config.set("millis", millis);
    report.config.set("pairs", pairs);
    report.config.set("seed", seed);
    report.results = obs::rows_from_table(tbl.header(), tbl.rows());
    if (!report.write_file(path)) return 1;
    std::printf("\nJSON report: %s\n", path.c_str());
  }
  return 0;
}
