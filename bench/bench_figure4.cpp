// Reproduces Figure 4 of the paper: system throughput of the four
// concurrent BSTs (NM, EFRB, HJ, BCCO) as a function of thread count,
// for every (key range × workload) cell of the paper's grid.
//
//   rows    : key ranges 1K / 10K / 100K (and 1M with --full)
//   columns : write-dominated (0/50/50), mixed (70/20/10),
//             read-dominated (90/9/1)
//   x-axis  : threads (default 1,2,4,8 — the paper sweeps to 256 on a
//             64-core Opteron; scale with --threads=...)
//
// Defaults are laptop-sized (short runs, 1M row skipped). Paper-scale:
//   bench_figure4 --full --millis 30000 --threads 1,2,4,8,16,32,64 --runs 3
//
// Output: one table per cell with a throughput column per algorithm and
// the paper's headline ratio (NM vs best rival); plus a final CSV dump
// (--csv to print only the CSV). --extended adds the related-work DVY
// tree (paper §1) and the coarse-lock floor to every cell.
//
// Structured output:
//   --json <path>   write the whole grid as an lfbst-bench-v1 document
//                   (the schema tools/plot_figure4.py consumes)
//   --trace <path>  after the grid, run one extra contended NM point with
//                   the obs::recording policy and a trace_log attached,
//                   and write the drained Chrome trace_event JSON (loads
//                   in Perfetto / chrome://tracing)
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "harness/flags.hpp"
#include "harness/statistics.hpp"
#include "harness/algorithms.hpp"
#include "harness/runner.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace lfbst;
using namespace lfbst::harness;

struct cell_series {
  std::string algorithm;
  std::vector<double> mops;  // one per thread count
};

}  // namespace

int main(int argc, char** argv) {
  const bench::flags flags(argc, argv);
  const bool full = flags.has("full");
  const bool csv_only = flags.has("csv");
  const auto millis = flags.get_int("millis", 150);
  const auto runs = static_cast<std::size_t>(flags.get_int("runs", 1));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const auto threads = flags.get_int_list("threads", {1, 2, 4, 8});

  std::vector<std::int64_t> ranges =
      flags.get_int_list("keyrange", full ? std::vector<std::int64_t>{
                                                1'000, 10'000, 100'000,
                                                1'000'000}
                                          : std::vector<std::int64_t>{
                                                1'000, 10'000, 100'000});
  std::vector<op_mix> mixes;
  if (flags.has("workload")) {
    mixes.push_back(mix_by_name(flags.get("workload", "mixed")));
  } else {
    mixes.assign(paper_mixes.begin(), paper_mixes.end());
  }

  text_table csv({"key_range", "workload", "threads", "algorithm",
                  "mops_per_sec"});

  if (!csv_only) {
    std::printf("=== Figure 4 reproduction: throughput (Mops/s) ===\n");
    std::printf("run length per point: %lld ms; threads swept: ",
                static_cast<long long>(millis));
    for (auto t : threads) std::printf("%lld ", static_cast<long long>(t));
    std::printf("\n(paper: 64-core AMD Opteron, 30 s points; shapes not "
                "absolute numbers are the comparison target)\n\n");
  }

  const bool extended = flags.has("extended");
  for (const std::int64_t range : ranges) {
    for (const op_mix& mix : mixes) {
      std::vector<cell_series> series;
      auto measure_one = [&]<typename Tree>() {
        cell_series s;
        s.algorithm = Tree::algorithm_name;
        for (const std::int64_t t : threads) {
          workload_config cfg;
          cfg.key_range = static_cast<std::uint64_t>(range);
          cfg.mix = mix;
          cfg.threads = static_cast<unsigned>(t);
          cfg.duration = std::chrono::milliseconds(millis);
          cfg.seed = seed;
          // One fresh tree per run, as the paper does per data point.
          const run_stats stats = aggregate_runs(
              [&] {
                Tree tree;
                return run_workload(tree, cfg).mops_per_second();
              },
              runs);
          s.mops.push_back(stats.mean);
          csv.add_row({std::to_string(range), mix.name, std::to_string(t),
                       s.algorithm, format("%.4f", stats.mean)});
          if (runs > 1 && stats.rel_spread() > 0.10 && !csv_only) {
            std::printf("  [noisy: %s %lldk/%s/%lld thr spread %.0f%%]\n",
                        s.algorithm.c_str(),
                        static_cast<long long>(range / 1000), mix.name,
                        static_cast<long long>(t),
                        100.0 * stats.rel_spread());
          }
        }
        series.push_back(std::move(s));
      };
      if (extended) {
        // Paper roster + the §1 related-work DVY tree, the cache-
        // conscious multiway tree (docs/MULTIWAY.md) and coarse floor.
        for_each_algorithm<long>(measure_one);
      } else {
        for_each_paper_algorithm<long>(measure_one);
      }

      if (csv_only) continue;
      std::printf("--- %s keys, %s workload ---\n",
                  std::to_string(range).c_str(), mix.name);
      std::vector<std::string> header{"threads"};
      for (const auto& s : series) header.push_back(s.algorithm);
      header.push_back("NM/best-rival");
      text_table tbl(header);
      for (std::size_t ti = 0; ti < threads.size(); ++ti) {
        std::vector<std::string> row{
            std::to_string(threads[ti])};
        double nm = 0, best_rival = 0;
        for (const auto& s : series) {
          row.push_back(format("%.3f", s.mops[ti]));
          if (s.algorithm == std::string("NM-BST")) {
            nm = s.mops[ti];
          } else {
            best_rival = std::max(best_rival, s.mops[ti]);
          }
        }
        row.push_back(best_rival > 0 ? format("%.2fx", nm / best_rival)
                                     : "-");
        tbl.add_row(std::move(row));
      }
      tbl.print();
      std::printf("\n");
    }
  }

  if (csv_only) {
    csv.print_csv(stdout);
  } else {
    std::printf("=== CSV (for plotting) ===\n");
    csv.print_csv(stdout);
  }

  if (flags.has("json")) {
    const std::string path = flags.get("json", "figure4.json");
    obs::bench_report report("figure4");
    report.config.set("millis", millis);
    report.config.set("runs", static_cast<std::uint64_t>(runs));
    report.config.set("seed", seed);
    report.config.set("full", full);
    report.config.set("extended", extended);
    report.results = obs::rows_from_table(csv.header(), csv.rows());
    if (!report.write_file(path)) return 1;
    if (!csv_only) std::printf("\nJSON report: %s\n", path.c_str());
  }

  if (flags.has("trace")) {
    const std::string path = flags.get("trace", "figure4.trace.json");
    // One deliberately contended point: small range, write-dominated,
    // with the recording policy mirroring every protocol event into a
    // trace ring and the global sink catching substrate events.
    using recorded_tree =
        nm_tree<long, std::less<long>, reclaim::epoch, obs::recording>;
    obs::trace_log trace;
    recorded_tree tree;
    tree.stats().attach_trace(&trace);
    obs::set_global_trace_sink(&trace);
    workload_config cfg;
    cfg.key_range = 1'024;
    cfg.mix = write_dominated;
    cfg.threads = static_cast<unsigned>(
        std::max<std::int64_t>(4, threads.back()));
    cfg.duration = std::chrono::milliseconds(std::min<std::int64_t>(
        millis, 100));  // a full ring is plenty; keep the file loadable
    cfg.seed = seed;
    run_workload(tree, cfg);
    obs::set_global_trace_sink(nullptr);
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write trace to %s\n", path.c_str());
      return 1;
    }
    const std::string doc = trace.chrome_trace_json();
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    if (!csv_only) {
      std::printf("Chrome trace: %s (%llu events recorded, %llu dropped "
                  "to ring overwrite)\n",
                  path.c_str(),
                  static_cast<unsigned long long>(trace.recorded()),
                  static_cast<unsigned long long>(trace.dropped()));
    }
  }
  return 0;
}
