// Per-operation latency percentiles under concurrent load — the view
// Figure 4's throughput averages hide. Lock-free structures shine in the
// tail: an NM operation's latency is bounded by its own path plus a
// bounded amount of helping, while lock-based designs inherit the lock
// holder's scheduling luck.
//
// Method: the standard throughput runner with an obs::latency_observer
// attached — every operation is timed with a steady_clock pair and
// recorded into per-thread HDR histograms (src/obs/histogram.hpp),
// merged at quiescence into p50/p90/p99/p99.9/max per op kind.
//
//   bench_latency [--keyrange N] [--threads N] [--millis N]
//                 [--workload mixed|write-dominated|read-dominated]
//                 [--json <path>]
#include <cstdio>
#include <string>
#include <vector>

#include "harness/algorithms.hpp"
#include "harness/flags.hpp"
#include "harness/runner.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "obs/export.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace lfbst;
using namespace lfbst::harness;

}  // namespace

int main(int argc, char** argv) {
  const bench::flags flags(argc, argv);
  workload_config cfg;
  cfg.key_range = static_cast<std::uint64_t>(flags.get_int("keyrange", 10'000));
  cfg.threads = static_cast<unsigned>(flags.get_int("threads", 4));
  cfg.duration = std::chrono::milliseconds(flags.get_int("millis", 250));
  cfg.mix = mix_by_name(flags.get("workload", "mixed"));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));

  std::printf("=== operation latency percentiles (ns) ===\n%s\n\n",
              cfg.label().c_str());
  text_table tbl({"algorithm", "op", "p50", "p90", "p99", "p99.9", "max",
                  "samples"});
  for_each_algorithm<long>([&]<typename Tree>() {
    Tree tree;
    obs::latency_observer observer;
    run_workload(tree, cfg, &observer);
    auto add = [&](const char* op, const obs::histogram& h) {
      tbl.add_row({Tree::algorithm_name, op,
                   std::to_string(h.value_at_percentile(50)),
                   std::to_string(h.value_at_percentile(90)),
                   std::to_string(h.value_at_percentile(99)),
                   std::to_string(h.value_at_percentile(99.9)),
                   std::to_string(h.max()), std::to_string(h.count())});
    };
    add("all", observer.merged_all());
    add("search", observer.merged(stats::op_kind::search));
    add("insert", observer.merged(stats::op_kind::insert));
    add("erase", observer.merged(stats::op_kind::erase));
  });
  tbl.print();

  if (flags.has("json")) {
    const std::string path = flags.get("json", "latency.json");
    obs::bench_report report("latency");
    report.config.set("keyrange", cfg.key_range);
    report.config.set("threads", cfg.threads);
    report.config.set("millis",
                      static_cast<std::uint64_t>(cfg.duration.count()));
    report.config.set("workload", cfg.mix.name);
    report.config.set("seed", cfg.seed);
    report.results = obs::rows_from_table(tbl.header(), tbl.rows());
    if (!report.write_file(path)) return 1;
    std::printf("\nJSON report: %s\n", path.c_str());
  }

  std::printf("\nNote: percentiles are HDR-histogram bucket values (~3%%\n"
              "resolution). On an oversubscribed host the max column is\n"
              "dominated by preemption (a whole scheduling quantum); the\n"
              "p99/p99.9 gap between lock-free and lock-based rows is the\n"
              "signal.\n");
  return 0;
}
