// Per-operation latency percentiles under concurrent load — the view
// Figure 4's throughput averages hide. Lock-free structures shine in the
// tail: an NM operation's latency is bounded by its own path plus a
// bounded amount of helping, while lock-based designs inherit the lock
// holder's scheduling luck.
//
// Method: each thread runs the paper's mixed workload and samples every
// 64th operation with a steady_clock pair; samples are merged and
// p50/p90/p99/p99.9/max reported per algorithm.
//
//   bench_latency [--keyrange N] [--threads N] [--millis N]
//                 [--workload mixed|write-dominated|read-dominated]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/barrier.hpp"
#include "common/rng.hpp"
#include "harness/algorithms.hpp"
#include "harness/flags.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"

namespace {

using namespace lfbst;
using namespace lfbst::harness;

struct latency_stats {
  double p50, p90, p99, p999, worst;  // nanoseconds
  std::size_t samples;
};

latency_stats summarize(std::vector<double>& ns) {
  std::sort(ns.begin(), ns.end());
  auto at = [&](double q) {
    if (ns.empty()) return 0.0;
    return ns[std::min(ns.size() - 1,
                       static_cast<std::size_t>(q * static_cast<double>(
                                                         ns.size())))];
  };
  return {at(0.50), at(0.90), at(0.99), at(0.999),
          ns.empty() ? 0.0 : ns.back(), ns.size()};
}

template <typename Tree>
latency_stats measure(const workload_config& cfg) {
  Tree tree;
  pcg32 fill(cfg.seed);
  std::uint64_t filled = 0;
  while (filled < cfg.key_range / 2) {
    if (tree.insert(static_cast<long>(fill.next64() % cfg.key_range))) {
      ++filled;
    }
  }
  std::atomic<bool> stop{false};
  spin_barrier barrier(cfg.threads + 1);
  std::vector<std::vector<double>> samples(cfg.threads);
  std::vector<std::thread> threads;
  for (unsigned tid = 0; tid < cfg.threads; ++tid) {
    threads.emplace_back([&, tid] {
      pcg32 rng = pcg32::for_thread(cfg.seed, tid);
      auto& local = samples[tid];
      local.reserve(1 << 16);
      std::uint64_t n = 0;
      barrier.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint32_t roll = rng.bounded(100);
        const long key = static_cast<long>(rng.next64() % cfg.key_range);
        const bool sampled = (n++ % 64) == 0;
        std::chrono::steady_clock::time_point t0;
        if (sampled) t0 = std::chrono::steady_clock::now();
        if (roll < cfg.mix.search_pct) {
          (void)tree.contains(key);
        } else if (roll < cfg.mix.search_pct + cfg.mix.insert_pct) {
          (void)tree.insert(key);
        } else {
          (void)tree.erase(key);
        }
        if (sampled) {
          local.push_back(std::chrono::duration<double, std::nano>(
                              std::chrono::steady_clock::now() - t0)
                              .count());
        }
      }
    });
  }
  barrier.arrive_and_wait();
  std::this_thread::sleep_for(cfg.duration);
  stop.store(true);
  for (auto& t : threads) t.join();
  std::vector<double> all;
  for (auto& s : samples) all.insert(all.end(), s.begin(), s.end());
  return summarize(all);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::flags flags(argc, argv);
  workload_config cfg;
  cfg.key_range = static_cast<std::uint64_t>(flags.get_int("keyrange", 10'000));
  cfg.threads = static_cast<unsigned>(flags.get_int("threads", 4));
  cfg.duration = std::chrono::milliseconds(flags.get_int("millis", 250));
  cfg.mix = mix_by_name(flags.get("workload", "mixed"));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));

  std::printf("=== operation latency percentiles (ns) ===\n%s\n\n",
              cfg.label().c_str());
  text_table tbl({"algorithm", "p50", "p90", "p99", "p99.9", "max",
                  "samples"});
  for_each_algorithm<long>([&]<typename Tree>() {
    const latency_stats s = measure<Tree>(cfg);
    tbl.add_row({Tree::algorithm_name, format("%.0f", s.p50),
                 format("%.0f", s.p90), format("%.0f", s.p99),
                 format("%.0f", s.p999), format("%.0f", s.worst),
                 std::to_string(s.samples)});
  });
  tbl.print();
  std::printf("\nNote: on an oversubscribed host the max column is "
              "dominated by preemption (a whole scheduling quantum); the "
              "p99/p99.9 gap between lock-free and lock-based rows is the "
              "signal.\n");
  return 0;
}
