// Reproduces Table 1 of the paper: per-operation objects allocated and
// atomic instructions executed by each lock-free algorithm, in the
// absence of contention and with no memory reclamation.
//
//   Algorithm          objects alloc'd      atomics executed
//                      insert  delete       insert  delete
//   Ellen et al.         4       1            3       4
//   Howley & Jones       2       1            3      up to 9
//   This work (NM)       2       0            1       3
//
// Method: a single thread performs `--ops` random inserts into a tree
// pre-filled over `--keyrange`, then random deletes, with the counting
// stats policy tallying every allocation, CAS and BTS. Reported numbers
// are means over *successful* operations; the table also prints the
// observed maximum for HJ deletes, which bifurcate (4 for nodes with <2
// children, 9 for the relocation path).
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/efrb_tree.hpp"
#include "baselines/hj_tree.hpp"
#include "harness/flags.hpp"
#include "common/rng.hpp"
#include "core/natarajan_tree.hpp"
#include "core/stats.hpp"
#include "harness/table.hpp"
#include "obs/export.hpp"

namespace {

using namespace lfbst;

struct measured {
  double insert_allocs = 0, erase_allocs = 0;
  double insert_atomics = 0, erase_atomics = 0;
  std::uint64_t max_erase_atomics = 0;
};

template <typename Tree>
measured measure(std::uint64_t ops, std::uint64_t key_range,
                 std::uint64_t seed) {
  Tree tree;
  pcg32 rng(seed);
  // Pre-fill half the range so both hit and miss paths occur.
  std::uint64_t filled = 0;
  while (filled < key_range / 2) {
    if (tree.insert(static_cast<long>(rng.next64() % key_range))) ++filled;
  }

  measured m;
  std::uint64_t ok_inserts = 0, ok_erases = 0;
  std::uint64_t insert_allocs = 0, insert_atomics = 0;
  std::uint64_t erase_allocs = 0, erase_atomics = 0;

  for (std::uint64_t i = 0; i < ops; ++i) {
    const long k = static_cast<long>(rng.next64() % key_range);
    {
      const auto before = stats::counting::snapshot();
      const bool ok = tree.insert(k);
      const auto d = stats::counting::delta(before);
      if (ok) {
        ++ok_inserts;
        insert_allocs += d.objects_allocated;
        insert_atomics += d.atomics();
      }
    }
    const long k2 = static_cast<long>(rng.next64() % key_range);
    {
      const auto before = stats::counting::snapshot();
      const bool ok = tree.erase(k2);
      const auto d = stats::counting::delta(before);
      if (ok) {
        ++ok_erases;
        erase_allocs += d.objects_allocated;
        erase_atomics += d.atomics();
        m.max_erase_atomics = std::max(m.max_erase_atomics, d.atomics());
      }
    }
  }
  m.insert_allocs = static_cast<double>(insert_allocs) / ok_inserts;
  m.insert_atomics = static_cast<double>(insert_atomics) / ok_inserts;
  m.erase_allocs = static_cast<double>(erase_allocs) / ok_erases;
  m.erase_atomics = static_cast<double>(erase_atomics) / ok_erases;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::flags flags(argc, argv);
  const auto ops = static_cast<std::uint64_t>(flags.get_int("ops", 50'000));
  const auto range =
      static_cast<std::uint64_t>(flags.get_int("keyrange", 10'000));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));

  using counting = stats::counting;
  const auto nm =
      measure<nm_tree<long, std::less<long>, reclaim::leaky, counting>>(
          ops, range, seed);
  const auto efrb =
      measure<efrb_tree<long, std::less<long>, reclaim::leaky, counting>>(
          ops, range, seed);
  const auto hj =
      measure<hj_tree<long, std::less<long>, reclaim::leaky, counting>>(
          ops, range, seed);

  std::printf("=== Table 1 reproduction: uncontended per-operation costs "
              "===\n(single thread, %llu ops over %llu keys, no memory "
              "reclamation)\n\n",
              static_cast<unsigned long long>(ops),
              static_cast<unsigned long long>(range));

  harness::text_table tbl({"Algorithm", "alloc/insert", "alloc/delete",
                           "atomics/insert", "atomics/delete",
                           "max atomics/delete", "paper says"});
  auto row = [&](const char* name, const measured& m, const char* paper) {
    tbl.add_row({name, harness::format("%.2f", m.insert_allocs),
                 harness::format("%.2f", m.erase_allocs),
                 harness::format("%.2f", m.insert_atomics),
                 harness::format("%.2f", m.erase_atomics),
                 std::to_string(m.max_erase_atomics), paper});
  };
  row("EFRB-BST (Ellen et al.)", efrb, "4/1 allocs, 3/4 atomics");
  row("HJ-BST (Howley-Jones)", hj, "2/1 allocs, 3/<=9 atomics");
  row("NM-BST (this work)", nm, "2/0 allocs, 1/3 atomics");
  tbl.print();

  if (flags.has("json")) {
    const std::string path = flags.get("json", "table1.json");
    obs::bench_report report("table1");
    report.config.set("ops", ops);
    report.config.set("keyrange", range);
    report.config.set("seed", seed);
    report.results = obs::rows_from_table(tbl.header(), tbl.rows());
    if (!report.write_file(path)) return 1;
    std::printf("\nJSON report: %s\n", path.c_str());
  }

  std::printf("\nNotes: HJ deletes average between 4 (short path) and 9\n"
              "(two-child relocation); its allocation mean sits between 1\n"
              "and 2 for the same reason. NM deletes allocate nothing and\n"
              "never exceed 3 atomics uncontended.\n");
  return 0;
}
